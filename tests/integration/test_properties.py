"""Property-based tests (hypothesis) for the paper's invariants.

- eventual delivery: every message to a live process arrives exactly once,
  under any migration schedule and channel fault mix;
- transparency: a client's observable transcript is independent of the
  migration schedule;
- identity: pids never change; only location hints do;
- convergence: a repeatedly-used stale link is eventually patched and
  forwarding stops.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind
from repro.net.channel import FaultPlan
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_bare_system, make_system

BOUNDED = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

machine_ids = st.integers(min_value=0, max_value=3)

migration_schedules = st.lists(
    st.tuples(
        st.integers(min_value=1_000, max_value=60_000),  # when
        machine_ids,  # where
    ),
    max_size=4,
)

fault_plans = st.builds(
    FaultPlan,
    drop_probability=st.sampled_from([0.0, 0.1, 0.25]),
    duplicate_probability=st.sampled_from([0.0, 0.1]),
    max_jitter=st.sampled_from([0, 1_000]),
)


class TestEventualDelivery:
    @BOUNDED
    @given(schedule=migration_schedules, faults=fault_plans,
           seed=st.integers(min_value=0, max_value=10**6))
    def test_every_message_delivered_exactly_once(self, schedule, faults, seed):
        system = make_bare_system(machines=4, faults=faults, seed=seed)
        received = []
        total = 10

        def receiver(ctx):
            for _ in range(total):
                msg = yield ctx.receive()
                received.append(msg.payload)
            while True:
                yield ctx.receive()

        pid = system.spawn(receiver, machine=0, name="sink")
        for at, dest in schedule:
            system.loop.call_at(
                at, lambda d=dest: system.kernel_hosting(pid)
                and system.kernel_hosting(pid).migration.start(pid, d),
            )
        # Sends from every machine, always with the stale original address.
        for i in range(total):
            sender_machine = 1 + i % 3
            system.loop.call_at(
                2_000 * i,
                lambda i=i, m=sender_machine: system.kernel(m).send_to_process(
                    ProcessAddress(pid, 0), "n", i, kind=MessageKind.USER,
                ),
            )
        drain(system, max_events=5_000_000)
        assert sorted(received) == list(range(total))


class TestTransparency:
    @BOUNDED
    @given(schedule=migration_schedules)
    def test_transcript_independent_of_migration_schedule(self, schedule):
        def run(migrations):
            board = ResultsBoard()
            system = make_system()
            box = {}

            def server(ctx):
                box["pid"] = ctx.pid
                yield from echo_server(ctx)

            system.spawn(server, machine=2, name="echo")
            system.spawn(
                lambda ctx: pinger(ctx, rounds=8, gap=4_000,
                                   board=board, key="pt"),
                machine=3, name="pinger",
            )
            for at, dest in migrations:
                system.loop.call_at(
                    at, lambda d=dest: system.kernel_hosting(box["pid"])
                    and system.kernel_hosting(box["pid"]).migration.start(
                        box["pid"], d),
                )
            drain(system, max_events=5_000_000)
            return [t["echo"] for t in board.only("pt-summary")["transcript"]]

        assert run(schedule) == run([])


class TestIdentityAndConvergence:
    @BOUNDED
    @given(destinations=st.lists(machine_ids, min_size=1, max_size=5))
    def test_pid_and_history_invariants(self, destinations):
        system = make_bare_system(machines=4)

        def parked(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(parked, machine=0, name="nomad")
        expected_history = [0]
        for dest in destinations:
            current = system.where_is(pid)
            system.kernel(current).migration.start(pid, dest)
            drain(system)
            if dest != current:
                expected_history.append(dest)
        state = system.process_state(pid)
        assert state.pid == pid  # identity never changes
        assert state.residence_history == expected_history
        assert system.where_is(pid) == expected_history[-1]

    @BOUNDED
    @given(hops=st.lists(st.sampled_from([1, 2, 3]), min_size=1, max_size=4),
           probes=st.integers(min_value=3, max_value=8))
    def test_forwarding_stops_once_links_converge(self, hops, probes):
        """After migrations settle, a sender using its (patched) link
        repeatedly triggers at most a bounded number of forwards."""
        system = make_bare_system(machines=4)
        done = []

        def server(ctx):
            while True:
                msg = yield ctx.receive()
                if msg.delivered_link_ids:
                    reply = msg.delivered_link_ids[0]
                    yield ctx.send(reply, op="r")
                    yield ctx.destroy_link(reply)

        def client(ctx):
            for _ in range(probes):
                reply_link = yield ctx.create_link()
                yield ctx.send(ctx.bootstrap["server"], op="q",
                              links=(reply_link,))
                yield ctx.receive()
                yield ctx.destroy_link(reply_link)
            done.append(True)
            yield ctx.exit()

        server_pid = system.spawn(server, machine=0, name="server")
        for dest in hops:
            current = system.where_is(server_pid)
            system.kernel(current).migration.start(server_pid, dest)
            drain(system)
        final = system.where_is(server_pid)
        system.kernel((final + 1) % 4).spawn(
            client, name="client",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
        drain(system, max_events=5_000_000)
        assert done == [True]
        # The client's stale link is fixed after its first use: total
        # forwards are bounded by the chain length, not by probe count.
        total_forwards = sum(
            k.forwarding.total_forwards for k in system.kernels
        )
        assert total_forwards <= len(hops) + 1
        assert total_forwards < probes or probes <= len(hops) + 1
