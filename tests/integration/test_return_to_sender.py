"""The §4 alternative: return messages as not deliverable.

"An alternative to message forwarding is to return messages to their
senders as not deliverable. ... The disadvantage of this scheme is that
... more of the system would be involved in message forwarding and would
have to be aware of process migration."  We implement it as an ablation:
no forwarding address is left; the sender's kernel asks the process
manager for the new location and re-sends.
"""

from repro.kernel.ids import ProcessAddress
from repro.kernel.kernel import UndeliverablePolicy
from repro.kernel.messages import MessageKind
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_system


def make_rts_system(**overrides):
    return make_system(
        undeliverable_policy=UndeliverablePolicy.RETURN_TO_SENDER,
        leave_forwarding_address=False,
        notify_process_manager=True,
        **overrides,
    )


class TestReturnToSender:
    def test_no_forwarding_address_left(self):
        system = make_rts_system()

        def parked(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(parked, machine=0, name="moved")
        system.migrate(pid, 2)
        drain(system)
        assert system.total_forwarding_entries() == 0
        assert system.where_is(pid) == 2

    def test_stale_message_still_delivered_via_pm_lookup(self):
        system = make_rts_system()
        got = []

        def receiver(ctx):
            msg = yield ctx.receive()
            got.append((msg.op, ctx.machine))
            yield ctx.exit()

        pid = system.spawn(receiver, machine=0, name="r")
        system.migrate(pid, 2)
        drain(system)
        # Stale send to machine 0; no forwarding address exists there.
        system.kernel(3).send_to_process(
            ProcessAddress(pid, 0), "stale", {}, kind=MessageKind.USER,
        )
        drain(system)
        assert got == [("stale", 2)]
        assert system.kernel(0).stats.nacks_sent >= 1

    def test_sender_links_patched_after_lookup(self):
        system = make_rts_system()
        board = ResultsBoard()
        server_box = {}

        def server(ctx):
            server_box["pid"] = ctx.pid
            yield from echo_server(ctx)

        system.spawn(server, machine=0, name="echo")
        client_pid = system.spawn(
            lambda ctx: pinger(ctx, rounds=6, gap=8_000, board=board,
                               key="rts"),
            machine=3, name="pinger",
        )
        system.loop.call_at(
            12_000, lambda: system.migrate(server_box["pid"], 1),
        )
        drain(system, max_events=5_000_000)
        transcript = board.only("rts-summary")["transcript"]
        # All rounds completed despite the NACK/lookup detour.
        assert [t["round"] for t in transcript] == list(range(6))
        assert transcript[-1]["server_machine"] == 1

    def test_message_to_dead_process_reported_undeliverable(self):
        from repro.kernel.ops import OP_UNDELIVERABLE

        system = make_rts_system()
        notices = []

        def brief(ctx):
            yield ctx.exit()

        def sender(ctx):
            yield ctx.sleep(5_000)
            yield ctx.send(ctx.bootstrap["peer"], op="too-late")
            msg = yield ctx.receive(timeout=200_000)
            notices.append(msg.op if msg else None)
            yield ctx.exit()

        dead = system.spawn(brief, machine=0)
        system.kernel(1).spawn(
            sender, name="sender",
            extra_links={"peer": ProcessAddress(dead, 0)},
        )
        drain(system)
        assert notices == [OP_UNDELIVERABLE]

    def test_more_machinery_involved_than_forwarding(self):
        """The paper's qualitative claim: the rejected design drags the
        process manager into every stale delivery.  Compare 'locate'
        traffic across the two designs for the same scenario."""

        def run(policy_kwargs):
            system = make_system(notify_process_manager=True,
                                 **policy_kwargs)
            got = []

            def receiver(ctx):
                while True:
                    msg = yield ctx.receive()
                    got.append(msg.op)

            pid = system.spawn(receiver, machine=0, name="r")
            system.migrate(pid, 2)
            drain(system)
            system.kernel(3).send_to_process(
                ProcessAddress(pid, 0), "stale", {}, kind=MessageKind.USER,
            )
            drain(system)
            assert got == ["stale"]
            return system.network.stats.sends_by_category.get("locate", 0)

        forwarding_locates = run({})
        rts_locates = run({
            "undeliverable_policy": UndeliverablePolicy.RETURN_TO_SENDER,
            "leave_forwarding_address": False,
        })
        assert forwarding_locates == 0
        assert rts_locates >= 1
