"""Scale check: a bigger park than the paper's lab (16 machines)."""

from repro.policy.load_balancer import ThresholdLoadBalancer
from repro.workloads.compute import compute_bound
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_bare_system


class TestScale:
    def test_sixteen_machines_sixty_processes(self):
        board = ResultsBoard()
        system = make_bare_system(machines=16)
        for i in range(60):
            system.spawn(
                lambda ctx: compute_bound(ctx, total=20_000, board=board,
                                          key="c"),
                machine=i % 4,  # only the first four machines get work
            )
        balancer = ThresholdLoadBalancer(
            system, interval=10_000, threshold=2, sustain=1,
            cooldown=30_000,
        )
        balancer.install()
        system.run(until=1_500_000)
        balancer.stop()
        drain(system, max_events=50_000_000)
        records = board.get("c")
        assert len(records) == 60
        assert balancer.stats.migrations_succeeded >= 5
        # Work spread beyond the original four machines.
        finished_on = {r["machines"][-1] for r in records}
        assert len(finished_on) > 4

    def test_fifty_sequential_migrations_of_one_process(self):
        system = make_bare_system(machines=8)

        def parked(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(parked, machine=0)
        for i in range(50):
            dest = (i + 1) % 8
            current = system.where_is(pid)
            if dest == current:
                dest = (dest + 1) % 8
            system.kernel(current).migration.start(pid, dest)
            drain(system)
        state = system.process_state(pid)
        assert state is not None
        assert state.accounting.migrations == 50
        # Forwarding entries: one per machine at most (reinstalls
        # overwrite), and the process's current home holds none.
        here = system.where_is(pid)
        assert system.kernel(here).forwarding.lookup(pid) is None
        assert system.total_forwarding_entries() <= 7
        # A maximally stale probe still lands (bounded chain).
        from repro.kernel.ids import ProcessAddress
        from repro.kernel.messages import MessageKind

        got = []

        def check():
            state.message_queue.clear()

        origin = pid.creating_machine
        system.kernel(origin).send_to_process(
            ProcessAddress(pid, origin), "probe", {},
            kind=MessageKind.USER,
        )
        drain(system)
        assert state.accounting.messages_received >= 1
