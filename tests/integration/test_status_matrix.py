"""Migration across the whole status matrix.

Step 1 promises "No change is made to the recorded state of the process
(whether it is suspended, running, waiting for message, etc.)" — so every
status a process can be in must survive a migration and resume exactly
its semantics on the destination.  One test per status, same template.
"""

import pytest

from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind
from repro.kernel.ops import OP_START_PROCESS, OP_STOP_PROCESS
from repro.kernel.process_state import ProcessStatus
from tests.conftest import drain, make_bare_system


class TestStatusMatrix:
    def test_ready_queued_behind_a_hog(self):
        """A READY process stuck behind a CPU hog migrates and runs."""
        system = make_bare_system()
        done = {}

        def hog(ctx):
            yield ctx.compute(200_000)
            yield ctx.exit()

        def subject(ctx):
            yield ctx.compute(50_000)
            done["machine"] = ctx.machine
            done["at"] = ctx.now
            yield ctx.exit()

        system.spawn(hog, machine=0)
        pid = system.spawn(subject, machine=0)
        # The subject shares the CPU with the hog; move it to an idle box.
        system.loop.call_at(5_000, lambda: system.migrate(pid, 1))
        drain(system)
        assert done["machine"] == 1
        # Alone on machine 1, it finished well before sharing would allow
        # (interleaved with the hog it would need ~100ms of wall clock).
        assert done["at"] < 80_000

    def test_running_mid_quantum(self):
        system = make_bare_system()
        done = {}

        def subject(ctx):
            yield ctx.compute(50_000)
            done["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(subject, machine=0)
        # Fire the migration while the subject holds the CPU.
        system.loop.call_at(500, lambda: system.migrate(pid, 2))
        drain(system)
        assert done["machine"] == 2

    def test_waiting_message(self):
        system = make_bare_system()
        done = {}

        def subject(ctx):
            msg = yield ctx.receive()
            done["op"] = msg.op
            done["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(subject, machine=0)
        drain(system)
        system.migrate(pid, 1)
        drain(system)
        assert system.process_state(pid).status is ProcessStatus.WAITING_MESSAGE
        system.kernel(2).send_to_process(
            ProcessAddress(pid, 0), "wake", {}, kind=MessageKind.USER,
        )
        drain(system)
        assert done == {"op": "wake", "machine": 1}

    def test_sleeping(self):
        system = make_bare_system()
        done = {}

        def subject(ctx):
            yield ctx.sleep(60_000)
            done["machine"] = ctx.machine
            done["at"] = ctx.now
            yield ctx.exit()

        pid = system.spawn(subject, machine=0)
        system.loop.call_at(10_000, lambda: system.migrate(pid, 1))
        drain(system)
        assert done["machine"] == 1
        assert done["at"] >= 60_000

    def test_suspended(self):
        system = make_bare_system()
        done = {}

        def subject(ctx):
            yield ctx.compute(30_000)
            done["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(subject, machine=0)
        addr = ProcessAddress(pid, 0)
        control = system.kernel(2)
        control.send_to_process(addr, OP_STOP_PROCESS, {},
                                deliver_to_kernel=True)
        system.run(until=10_000)
        assert system.process_state(pid).status is ProcessStatus.SUSPENDED
        system.migrate(pid, 1)
        drain(system)
        assert system.process_state(pid).status is ProcessStatus.SUSPENDED
        # Start it with the (stale) address; D2K chases it.
        control.send_to_process(addr, OP_START_PROCESS, {},
                                deliver_to_kernel=True)
        drain(system)
        assert done["machine"] == 1

    def test_waiting_transfer(self):
        """Covered in depth by test_datamove; here just the status
        invariant across the freeze."""
        from repro.kernel.links import DataArea, LinkAttribute

        system = make_bare_system(max_data_packet=128, latency=3_000)
        done = {}

        def owner(ctx):
            link = yield ctx.create_link(
                LinkAttribute.DATA_READ, DataArea(0, 4_096),
            )
            yield ctx.send(ctx.bootstrap["holder"], op="area",
                          links=(link,))
            while True:
                yield ctx.receive()

        def holder(ctx):
            msg = yield ctx.receive()
            moved = yield ctx.move_data(
                msg.delivered_link_ids[0], "read", 0, 4_096,
            )
            done["moved"] = moved
            done["machine"] = ctx.machine
            yield ctx.exit()

        holder_pid = system.kernel(1).spawn(holder, name="holder")
        system.kernel(0).spawn(
            owner, name="owner",
            extra_links={"holder": ProcessAddress(holder_pid, 1)},
        )
        system.loop.call_at(
            7_000, lambda: system.migrate(holder_pid, 2),
        )
        drain(system)
        assert done["moved"] == 4_096
        assert done["machine"] == 2

    @pytest.mark.parametrize("destination", [1, 2])
    def test_migration_is_destination_agnostic(self, destination):
        system = make_bare_system()
        done = {}

        def subject(ctx):
            yield ctx.compute(5_000)
            done["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(subject, machine=0)
        system.migrate(pid, destination)
        drain(system)
        assert done["machine"] == destination
