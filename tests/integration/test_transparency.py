"""End-to-end transparency: the paper's central claim.

"Ideally, all processes continue execution with no apparent changes in
their computation or communications."  These tests run full workloads
across aggressive migration schedules and assert the *observable results
are identical to an unmigrated run*.
"""

from repro.servers.filesystem import FileClient
from repro.workloads.file_clients import file_io_client
from repro.workloads.pingpong import echo_server, pinger
from tests.conftest import drain, make_system


class TestEchoTransparency:
    def run_echo(self, migrations, rounds=12):
        """Run pinger vs echo server under a migration schedule; return
        the pinger's transcript of echoed payloads."""
        from repro.workloads.results import ResultsBoard

        board = ResultsBoard()
        system = make_system()
        server_pid_box = {}

        def server(ctx):
            server_pid_box["pid"] = ctx.pid
            yield from echo_server(ctx)

        system.spawn(server, machine=2, name="echo")
        system.spawn(
            lambda ctx: pinger(ctx, rounds=rounds, gap=3_000,
                               board=board, key="t"),
            machine=3, name="pinger",
        )
        for at, dest in migrations:
            system.loop.call_at(
                at, lambda d=dest: system.migrate(server_pid_box["pid"], d),
            )
        drain(system)
        return board.only("t-summary")["transcript"]

    def test_client_sees_identical_payloads_with_and_without_migration(self):
        still = self.run_echo(migrations=[])
        moved = self.run_echo(migrations=[(5_000, 0), (20_000, 1),
                                          (35_000, 3)])
        assert [t["echo"] for t in still] == [t["echo"] for t in moved]
        assert len(moved) == 12

    def test_no_round_is_lost_or_duplicated(self):
        transcript = self.run_echo(
            migrations=[(4_000, 1), (12_000, 0), (22_000, 3)],
        )
        assert [t["round"] for t in transcript] == list(range(12))

    def test_client_observes_server_moving(self):
        transcript = self.run_echo(migrations=[(5_000, 0)])
        machines = {t["server_machine"] for t in transcript}
        assert machines == {2, 0}


class TestFileServerMigration:
    """The paper's own test example (§2.3): "It migrates a file system
    process while several user processes are performing I/O." """

    def run_io(self, migrations, clients=3, operations=6):
        from repro.workloads.results import ResultsBoard

        board = ResultsBoard()
        system = make_system()
        fs_pid = system.server_pids["file_system"]
        for tag in range(clients):
            system.spawn(
                lambda ctx, t=tag: file_io_client(
                    ctx, tag=t, operations=operations, gap=1_000,
                    board=board, key="io",
                ),
                machine=tag % 4, name=f"client-{tag}",
            )
        for at, dest in migrations:
            system.loop.call_at(
                at, lambda d=dest: system.migrate(fs_pid, d),
            )
        drain(system, max_events=5_000_000)
        return board.get("io"), system

    def test_no_errors_without_migration(self):
        results, _ = self.run_io(migrations=[])
        assert len(results) == 3
        assert all(r["errors"] == [] for r in results)

    def test_no_errors_with_migration_mid_io(self):
        results, system = self.run_io(
            migrations=[(20_000, 3), (120_000, 0)],
        )
        assert len(results) == 3
        for result in results:
            assert result["errors"] == [], result
            assert len(result["latencies"]) == 6
        # The file server really moved.
        assert system.where_is(system.server_pids["file_system"]) == 0

    def test_every_operation_completed(self):
        results, _ = self.run_io(migrations=[(30_000, 2)], clients=4,
                                 operations=5)
        assert sorted(r["tag"] for r in results) == [0, 1, 2, 3]
        assert all(r["operations"] == 5 for r in results)

    def test_file_contents_survive_entire_fs_relocation(self):
        """Write before migration, read after: data written through the
        old location must be readable through the new one."""
        system = make_system()
        fs_pid = system.server_pids["file_system"]
        outcome = {}

        def writer_then_reader(ctx):
            fs = FileClient(ctx)
            yield from fs.create("persist")
            handle = yield from fs.open("persist")
            yield from fs.write(handle, 0, b"before-migration")
            yield ctx.sleep(50_000)  # migration happens in this window
            data = yield from fs.read(handle, 0, 16)
            outcome["data"] = data
            outcome["fs_machine"] = None
            yield ctx.exit()

        system.spawn(writer_then_reader, machine=0, name="wtr")
        system.loop.call_at(30_000, lambda: system.migrate(fs_pid, 2))
        drain(system)
        assert outcome["data"] == b"before-migration"
        assert system.where_is(fs_pid) == 2


class TestMovingBothEnds:
    def test_client_and_server_both_migrate(self):
        from repro.workloads.results import ResultsBoard

        board = ResultsBoard()
        system = make_system()
        pids = {}

        def server(ctx):
            pids["server"] = ctx.pid
            yield from echo_server(ctx)

        def client(ctx):
            pids["client"] = ctx.pid
            yield from pinger(ctx, rounds=10, gap=4_000, board=board,
                              key="both")

        system.spawn(server, machine=0, name="echo")
        system.spawn(client, machine=1, name="pinger")
        system.loop.call_at(8_000, lambda: system.migrate(pids["server"], 2))
        system.loop.call_at(16_000, lambda: system.migrate(pids["client"], 3))
        system.loop.call_at(24_000, lambda: system.migrate(pids["server"], 1))
        drain(system)
        transcript = board.only("both-summary")["transcript"]
        assert [t["round"] for t in transcript] == list(range(10))
