"""Tests for per-process resource accounting — the §3.1 raw material:
"The migration scheme depends on the ability to evaluate the resource
use patterns of processes.  This function is normally available in the
accounting or performance monitoring part of the system." """

from repro.kernel.ids import ProcessAddress
from tests.conftest import drain, make_bare_system


class TestAccounting:
    def test_cpu_time_tracks_compute(self):
        system = make_bare_system()

        def job(ctx):
            yield ctx.compute(7_000)
            yield ctx.receive()  # park

        pid = system.spawn(job, machine=0)
        drain(system)
        accounting = system.process_state(pid).accounting
        # Compute time plus a few syscall costs.
        assert 7_000 <= accounting.cpu_time <= 7_200

    def test_message_counters_both_directions(self):
        system = make_bare_system()

        def server(ctx):
            for _ in range(3):
                msg = yield ctx.receive()
                yield ctx.send(msg.delivered_link_ids[0], op="r")
            yield ctx.receive()  # park for inspection

        def client(ctx):
            for _ in range(3):
                reply_link = yield ctx.create_link()
                yield ctx.send(
                    ctx.bootstrap["server"],
                    op="q",
                    payload_bytes=100,
                    links=(reply_link,),
                )
                yield ctx.receive()
                yield ctx.destroy_link(reply_link)
            yield ctx.receive()  # park for inspection

        server_pid = system.spawn(server, machine=0)
        client_pid = system.kernel(1).spawn(
            client,
            name="client",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
        drain(system)
        server_acct = system.process_state(server_pid).accounting
        client_acct = system.process_state(client_pid).accounting
        assert server_acct.messages_received == 3
        assert server_acct.messages_sent == 3
        assert client_acct.messages_sent == 3
        assert client_acct.messages_received == 3
        # Bytes include headers + declared payloads + enclosed links.
        assert client_acct.bytes_sent > 3 * 100
        assert server_acct.bytes_received == client_acct.bytes_sent

    def test_forwarded_to_me_counter(self):
        system = make_bare_system()

        def receiver(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(receiver, machine=0)
        system.migrate(pid, 1)
        drain(system)
        from repro.kernel.messages import MessageKind

        for _ in range(3):
            system.kernel(2).send_to_process(
                ProcessAddress(pid, 0), "stale", {}, kind=MessageKind.USER
            )
            drain(system)
        accounting = system.process_state(pid).accounting
        assert accounting.forwarded_to_me >= 1
        assert accounting.messages_received == 3

    def test_migrations_counter_and_history_agree(self):
        system = make_bare_system()

        def parked(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(parked, machine=0)
        for dest in (1, 2, 0):
            system.migrate(pid, dest)
            drain(system)
        state = system.process_state(pid)
        assert state.accounting.migrations == 3
        assert len(state.residence_history) == 4
