"""Tests for the ProcessContext syscall sugar and introspection."""

from repro.kernel.context import ProcessContext
from repro.kernel.links import DataArea, LinkAttribute
from repro.kernel.syscalls import (
    Compute,
    CreateLink,
    DestroyLink,
    DupLink,
    Exit,
    GetInfo,
    MoveData,
    Receive,
    RequestMigration,
    Send,
    Sleep,
    Yield,
)
from tests.conftest import drain, make_bare_system


class _FakeKernel:
    machine = 3

    class loop:  # noqa: N801 - minimal stub
        now = 1234


def make_ctx():
    from repro.kernel.ids import ProcessId

    return ProcessContext(_FakeKernel(), ProcessId(3, 1))


class TestSugar:
    def test_send_defaults(self):
        call = make_ctx().send(5)
        assert call == Send(5, "msg", None, 32, (), False)

    def test_send_full(self):
        call = make_ctx().send(
            5,
            op="x",
            payload=1,
            payload_bytes=9,
            links=(1, 2),
            deliver_to_kernel=True,
        )
        assert isinstance(call, Send)
        assert call.links == (1, 2) and call.deliver_to_kernel

    def test_receive(self):
        assert make_ctx().receive() == Receive(None)
        assert make_ctx().receive(timeout=7) == Receive(7)

    def test_create_link(self):
        area = DataArea(0, 10)
        call = make_ctx().create_link(LinkAttribute.DATA_READ, area)
        assert call == CreateLink(LinkAttribute.DATA_READ, area)

    def test_link_ops(self):
        assert make_ctx().dup_link(3) == DupLink(3)
        assert make_ctx().destroy_link(3) == DestroyLink(3)

    def test_timing_ops(self):
        assert make_ctx().compute(10) == Compute(10)
        assert make_ctx().sleep(10) == Sleep(10)
        assert isinstance(make_ctx().yield_cpu(), Yield)

    def test_move_data(self):
        call = make_ctx().move_data(2, "read", 0, 100)
        assert call == MoveData(2, "read", 0, 100)

    def test_lifecycle_ops(self):
        assert make_ctx().exit(3) == Exit(3)
        assert isinstance(make_ctx().get_info(), GetInfo)
        assert make_ctx().request_migration(2) == RequestMigration(2)

    def test_introspection(self):
        ctx = make_ctx()
        assert ctx.machine == 3
        assert ctx.now == 1234
        assert "machine 3" in repr(ctx)


class TestRebinding:
    def test_context_machine_follows_migration(self):
        system = make_bare_system()
        seen = []

        def watcher(ctx):
            seen.append(ctx.machine)
            yield ctx.sleep(20_000)
            seen.append(ctx.machine)
            yield ctx.exit()

        pid = system.spawn(watcher, machine=0)
        system.loop.call_at(5_000, lambda: system.migrate(pid, 2))
        drain(system)
        assert seen == [0, 2]

    def test_bootstrap_links_usable_after_migration(self):
        system = make_bare_system()
        log = []

        def sink(ctx):
            msg = yield ctx.receive()
            log.append(msg.op)
            yield ctx.exit()

        from repro.kernel.ids import ProcessAddress

        sink_pid = system.spawn(sink, machine=0, name="sink")

        def traveller(ctx):
            yield ctx.request_migration(2)
            yield ctx.compute(100)  # let the move complete
            yield ctx.send(ctx.bootstrap["sink"], op="from-afar")
            yield ctx.exit()

        system.kernel(1).spawn(
            traveller,
            name="traveller",
            extra_links={"sink": ProcessAddress(sink_pid, 0)},
        )
        drain(system)
        assert log == ["from-afar"]
