"""Tests for the move-data facility (paper §2.2)."""

from repro.errors import LinkAccessError, TransferError
from repro.kernel.ids import ProcessAddress
from repro.kernel.links import DataArea, LinkAttribute
from tests.conftest import drain, make_bare_system


def make_owner(area_length=4_096, writable=False, park=True):
    """An owner program that mints a data-area link and sends it to the
    process at bootstrap['holder']."""

    def owner(ctx):
        attrs = LinkAttribute.DATA_READ
        if writable:
            attrs |= LinkAttribute.DATA_WRITE
        data_link = yield ctx.create_link(attrs, DataArea(0, area_length))
        yield ctx.send(
            ctx.bootstrap["holder"], op="here-is-the-area", links=(data_link,)
        )
        if park:
            while True:
                yield ctx.receive()
        else:
            yield ctx.exit()

    return owner


def make_holder(direction, offset, length, outcome):
    def holder(ctx):
        msg = yield ctx.receive()
        area_link = msg.delivered_link_ids[0]
        try:
            moved = yield ctx.move_data(area_link, direction, offset, length)
            outcome["moved"] = moved
        except (LinkAccessError, TransferError) as exc:
            outcome["error"] = type(exc).__name__
        outcome["machine"] = ctx.machine
        yield ctx.exit()

    return holder


def wire_up(system, owner_machine, holder_machine, owner, holder):
    holder_pid = system.kernel(holder_machine).spawn(holder, name="holder")
    system.kernel(owner_machine).spawn(
        owner,
        name="owner",
        extra_links={"holder": ProcessAddress(holder_pid, holder_machine)},
    )
    return holder_pid


class TestRead:
    def test_remote_read_completes_with_byte_count(self):
        system = make_bare_system()
        outcome = {}
        wire_up(
            system, 0, 1, make_owner(), make_holder("read", 0, 3_000, outcome)
        )
        drain(system)
        assert outcome["moved"] == 3_000

    def test_read_streams_in_packets(self):
        system = make_bare_system(max_data_packet=512)
        outcome = {}
        wire_up(
            system, 0, 1, make_owner(), make_holder("read", 0, 2_048, outcome)
        )
        drain(system)
        assert outcome["moved"] == 2_048
        # ceil(2048/512) = 4 chunks in the datamove category.
        assert system.network.stats.sends_by_category["datamove"] == 4

    def test_local_read_uses_no_network(self):
        system = make_bare_system()
        outcome = {}
        wire_up(
            system, 0, 0, make_owner(), make_holder("read", 0, 2_000, outcome)
        )
        before = system.network.stats.packets_sent
        drain(system)
        assert outcome["moved"] == 2_000
        assert system.network.stats.packets_sent == before

    def test_read_beyond_area_rejected(self):
        system = make_bare_system()
        outcome = {}
        wire_up(
            system,
            0,
            1,
            make_owner(area_length=1_000),
            make_holder("read", 500, 1_000, outcome),
        )
        drain(system)
        assert outcome["error"] == "LinkAccessError"

    def test_read_without_grant_rejected(self):
        system = make_bare_system()
        outcome = {}

        def owner(ctx):
            # DATA_WRITE only: reads must be refused.
            link = yield ctx.create_link(
                LinkAttribute.DATA_WRITE, DataArea(0, 1_000)
            )
            yield ctx.send(ctx.bootstrap["holder"], op="area", links=(link,))
            while True:
                yield ctx.receive()

        wire_up(system, 0, 1, owner, make_holder("read", 0, 100, outcome))
        drain(system)
        assert outcome["error"] == "LinkAccessError"


class TestWrite:
    def test_remote_write_completes(self):
        system = make_bare_system()
        outcome = {}
        wire_up(
            system,
            0,
            1,
            make_owner(writable=True),
            make_holder("write", 0, 2_500, outcome),
        )
        drain(system)
        assert outcome["moved"] == 2_500

    def test_write_without_grant_rejected(self):
        system = make_bare_system()
        outcome = {}
        wire_up(
            system,
            0,
            1,
            make_owner(writable=False),
            make_holder("write", 0, 100, outcome),
        )
        drain(system)
        assert outcome["error"] == "LinkAccessError"

    def test_bad_direction_rejected(self):
        system = make_bare_system()
        outcome = {}
        wire_up(
            system,
            0,
            1,
            make_owner(writable=True),
            make_holder("sideways", 0, 100, outcome),
        )
        drain(system)
        assert outcome["error"] == "TransferError"


class TestTransferVsMigration:
    def test_read_from_migrated_owner_follows_forwarding(self):
        """The data-move request rides a DELIVERTOKERNEL message, so it
        chases the owner through its forwarding address."""
        system = make_bare_system()
        outcome = {}

        def holder(ctx):
            msg = yield ctx.receive()          # the data-area link
            area_link = msg.delivered_link_ids[0]
            yield ctx.receive(timeout=20_000)  # wait out the migration
            moved = yield ctx.move_data(area_link, "read", 0, 1_024)
            outcome["moved"] = moved
            yield ctx.exit()

        holder_pid = system.kernel(1).spawn(holder, name="holder")
        owner_pid = system.kernel(0).spawn(
            make_owner(),
            name="owner",
            extra_links={"holder": ProcessAddress(holder_pid, 1)},
        )
        system.run(until=5_000)
        system.migrate(owner_pid, 2)
        drain(system)
        assert outcome["moved"] == 1_024

    def test_read_from_dead_owner_fails_cleanly(self):
        system = make_bare_system()
        outcome = {}

        def holder(ctx):
            msg = yield ctx.receive()
            area_link = msg.delivered_link_ids[0]
            yield ctx.receive(timeout=20_000)  # let the owner die
            try:
                yield ctx.move_data(area_link, "read", 0, 512)
            except TransferError as exc:
                outcome["error"] = "TransferError"
            yield ctx.exit()

        wire_up(system, 0, 1, make_owner(park=False), holder)
        drain(system)
        assert outcome["error"] == "TransferError"

    def test_holder_migrating_mid_transfer_still_completes(self):
        """Chunks and the completion chase the holder via forwarding."""
        system = make_bare_system(
            max_data_packet=256,
            latency=2_000,  # slow wires: the transfer takes a while
        )
        outcome = {}

        def holder(ctx):
            msg = yield ctx.receive()
            area_link = msg.delivered_link_ids[0]
            moved = yield ctx.move_data(area_link, "read", 0, 6_144)
            outcome["moved"] = moved
            outcome["machine"] = ctx.machine
            yield ctx.exit()

        holder_pid = wire_up(
            system, 0, 1, make_owner(area_length=6_144), holder
        )
        # Migrate the holder while chunks are in flight: the area link
        # arrives ~2ms (one wire latency), the read request ~4ms, and the
        # 24 chunks land from ~6ms — so at 4.5ms the transfer is pending.
        system.loop.call_at(4_500, lambda: system.migrate(holder_pid, 2))
        drain(system)
        assert outcome["moved"] == 6_144
        assert outcome["machine"] == 2
