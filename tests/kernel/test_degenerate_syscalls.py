"""Degenerate syscall arguments: zeros and empty things must be sane."""

from tests.conftest import drain, make_bare_system


class TestDegenerateArguments:
    def test_compute_zero_completes_immediately(self):
        system = make_bare_system()
        done = {}

        def program(ctx):
            yield ctx.compute(0)
            done["at"] = ctx.now
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert done["at"] < 1_000

    def test_sleep_zero(self):
        system = make_bare_system()
        done = {}

        def program(ctx):
            yield ctx.sleep(0)
            done["at"] = ctx.now
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert done["at"] < 1_000

    def test_receive_timeout_zero_polls(self):
        system = make_bare_system()
        result = {"msg": "unset"}

        def program(ctx):
            msg = yield ctx.receive(timeout=0)
            result["msg"] = msg
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert result["msg"] is None

    def test_send_with_no_links_or_payload(self):
        system = make_bare_system()
        got = []

        def receiver(ctx):
            msg = yield ctx.receive()
            got.append((msg.payload, msg.links))
            yield ctx.exit()

        from repro.kernel.ids import ProcessAddress

        receiver_pid = system.spawn(receiver, machine=0)

        def sender(ctx):
            yield ctx.send(ctx.bootstrap["peer"])
            yield ctx.exit()

        system.kernel(1).spawn(
            sender, extra_links={"peer": ProcessAddress(receiver_pid, 0)}
        )
        drain(system)
        assert got == [(None, ())]

    def test_move_data_zero_length(self):
        from repro.kernel.links import DataArea, LinkAttribute
        from repro.kernel.ids import ProcessAddress

        system = make_bare_system()
        done = {}

        def owner(ctx):
            link = yield ctx.create_link(
                LinkAttribute.DATA_READ, DataArea(0, 100)
            )
            yield ctx.send(ctx.bootstrap["holder"], op="a", links=(link,))
            while True:
                yield ctx.receive()

        def holder(ctx):
            msg = yield ctx.receive()
            moved = yield ctx.move_data(
                msg.delivered_link_ids[0], "read", 0, 0
            )
            done["moved"] = moved
            yield ctx.exit()

        holder_pid = system.kernel(1).spawn(holder, name="holder")
        system.kernel(0).spawn(
            owner,
            name="owner",
            extra_links={"holder": ProcessAddress(holder_pid, 1)},
        )
        drain(system)
        assert done["moved"] == 0

    def test_exit_code_zero_default(self):
        system = make_bare_system()

        def program(ctx):
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        (record,) = system.tracer.records("kernel", "exit")
        assert record.fields["code"] == 0
