"""Tests for message delivery: local/remote, enclosed links,
DELIVERTOKERNEL control, and undeliverable handling."""

from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind
from repro.kernel.ops import (
    OP_STOP_PROCESS,
    OP_START_PROCESS,
    OP_UNDELIVERABLE,
)
from repro.kernel.process_state import ProcessStatus
from tests.conftest import drain, make_bare_system


def spawn_with_peer(system, program, machine, peer_pid, peer_machine, name=""):
    """Spawn *program* with a bootstrap link 'peer' to another process."""
    return system.kernel(machine).spawn(
        program,
        name=name,
        extra_links={"peer": ProcessAddress(peer_pid, peer_machine)},
    )


class TestBasicDelivery:
    def test_remote_request_reply(self):
        system = make_bare_system()
        log = []

        def server(ctx):
            msg = yield ctx.receive()
            log.append(("got", msg.op, msg.payload))
            yield ctx.send(
                msg.delivered_link_ids[0], op="reply", payload=msg.payload * 2
            )
            yield ctx.exit()

        def client(ctx):
            reply_link = yield ctx.create_link()
            yield ctx.send(
                ctx.bootstrap["peer"],
                op="req",
                payload=21,
                links=(reply_link,),
            )
            msg = yield ctx.receive()
            log.append(("reply", msg.payload))
            yield ctx.exit()

        server_pid = system.spawn(server, machine=0, name="server")
        spawn_with_peer(system, client, 1, server_pid, 0, name="client")
        drain(system)
        assert ("got", "req", 21) in log
        assert ("reply", 42) in log

    def test_local_delivery_never_uses_network(self):
        system = make_bare_system()

        def server(ctx):
            yield ctx.receive()
            yield ctx.exit()

        def client(ctx):
            yield ctx.send(ctx.bootstrap["peer"], op="local")
            yield ctx.exit()

        server_pid = system.spawn(server, machine=0)
        spawn_with_peer(system, client, 0, server_pid, 0)
        before = system.network.stats.packets_sent
        drain(system)
        assert system.network.stats.packets_sent == before

    def test_messages_queue_in_fifo_order(self):
        system = make_bare_system()
        received = []

        def server(ctx):
            for _ in range(5):
                msg = yield ctx.receive()
                received.append(msg.payload)
            yield ctx.exit()

        def client(ctx):
            for i in range(5):
                yield ctx.send(ctx.bootstrap["peer"], op="n", payload=i)
            yield ctx.exit()

        server_pid = system.spawn(server, machine=0)
        spawn_with_peer(system, client, 1, server_pid, 0)
        drain(system)
        assert received == [0, 1, 2, 3, 4]

    def test_enclosed_links_materialise_at_receive(self):
        system = make_bare_system()
        observed = {}

        def server(ctx):
            msg = yield ctx.receive()
            observed["ids"] = msg.delivered_link_ids
            info = yield ctx.get_info()
            observed["count"] = info["link_count"]
            yield ctx.exit()

        def client(ctx):
            a = yield ctx.create_link()
            b = yield ctx.create_link()
            yield ctx.send(ctx.bootstrap["peer"], op="two-links", links=(a, b))
            yield ctx.exit()

        server_pid = system.spawn(server, machine=0)
        spawn_with_peer(system, client, 1, server_pid, 0)
        drain(system)
        assert len(observed["ids"]) == 2
        assert observed["count"] == 2

    def test_passed_link_still_points_to_originator(self):
        """Context independence: A mints a link, sends it to B, B passes
        it to C, and C's message still reaches A."""
        system = make_bare_system()
        log = []

        def origin(ctx):  # A
            msg = yield ctx.receive()
            log.append(("A-got", msg.op, msg.sender.pid))
            yield ctx.exit()

        def middle(ctx):  # B: receives a link to A, forwards it to C
            msg = yield ctx.receive()
            link_to_a = msg.delivered_link_ids[0]
            yield ctx.send(
                ctx.bootstrap["peer"], op="pass", links=(link_to_a,)
            )
            yield ctx.exit()

        def last(ctx):  # C: uses the twice-passed link
            msg = yield ctx.receive()
            yield ctx.send(msg.delivered_link_ids[0], op="hello-A")
            yield ctx.exit()

        a_pid = system.spawn(origin, machine=0, name="A")
        c_pid = system.spawn(last, machine=2, name="C")
        b_pid = spawn_with_peer(system, middle, 1, c_pid, 2, name="B")

        # Seed B with a link to A.
        def seeder(ctx):
            yield ctx.send(
                ctx.bootstrap["peer"],
                op="seed",
                links=(ctx.bootstrap["to_a"],),
            )
            yield ctx.exit()

        system.kernel(1).spawn(
            seeder,
            name="seeder",
            extra_links={
                "peer": ProcessAddress(b_pid, 1),
                "to_a": ProcessAddress(a_pid, 0),
            },
        )
        drain(system)
        assert log == [("A-got", "hello-A", c_pid)]


class TestDeliverToKernel:
    def test_stop_and_start_via_d2k(self):
        system = make_bare_system()
        progress = []

        def victim(ctx):
            while True:
                yield ctx.compute(1_000)
                progress.append(ctx.now)

        victim_pid = system.spawn(victim, machine=0)
        kernel = system.kernel(1)
        kernel.send_to_process(
            ProcessAddress(victim_pid, 0),
            OP_STOP_PROCESS,
            {},
            deliver_to_kernel=True,
        )
        system.run(until=20_000)
        state = system.process_state(victim_pid)
        assert state.status is ProcessStatus.SUSPENDED
        stopped_at = len(progress)

        kernel.send_to_process(
            ProcessAddress(victim_pid, 0),
            OP_START_PROCESS,
            {},
            deliver_to_kernel=True,
        )
        system.run(until=40_000)
        assert len(progress) > stopped_at

    def test_stop_while_waiting_restores_wait(self):
        system = make_bare_system()
        got = []

        def waiter(ctx):
            msg = yield ctx.receive()
            got.append(msg.op)
            yield ctx.exit()

        waiter_pid = system.spawn(waiter, machine=0)
        kernel = system.kernel(1)
        addr = ProcessAddress(waiter_pid, 0)
        kernel.send_to_process(
            addr, OP_STOP_PROCESS, {}, deliver_to_kernel=True
        )
        system.run(until=5_000)
        assert (
            system.process_state(waiter_pid).status is ProcessStatus.SUSPENDED
        )
        kernel.send_to_process(
            addr, OP_START_PROCESS, {}, deliver_to_kernel=True
        )
        system.run(until=10_000)
        assert (
            system.process_state(waiter_pid).status
            is ProcessStatus.WAITING_MESSAGE
        )
        # A message still wakes it normally afterwards.
        kernel.send_to_process(addr, "poke", {}, kind=MessageKind.USER)
        drain(system)
        assert got == ["poke"]


class TestUndeliverable:
    def test_message_to_dead_process_notifies_sender(self):
        system = make_bare_system()
        notices = []

        def shortlived(ctx):
            yield ctx.exit()

        def client(ctx):
            yield ctx.sleep(5_000)  # let the peer die first
            yield ctx.send(ctx.bootstrap["peer"], op="too-late")
            msg = yield ctx.receive(timeout=50_000)
            notices.append(msg.op if msg else None)
            yield ctx.exit()

        dead_pid = system.spawn(shortlived, machine=0)
        spawn_with_peer(system, client, 1, dead_pid, 0)
        drain(system)
        assert notices == [OP_UNDELIVERABLE]

    def test_message_to_never_existing_process_notifies_sender(self):
        from repro.kernel.ids import ProcessId

        system = make_bare_system()
        notices = []

        def client(ctx):
            yield ctx.send(ctx.bootstrap["peer"], op="ghost")
            msg = yield ctx.receive(timeout=50_000)
            notices.append(msg.op if msg else None)
            yield ctx.exit()

        system.kernel(1).spawn(
            client, extra_links={"peer": ProcessAddress(ProcessId(0, 999), 0)}
        )
        drain(system)
        assert notices == [OP_UNDELIVERABLE]
