"""Tests for the kernel's syscall engine: programs as generators."""

from repro.errors import InvalidLinkError, KernelError
from repro.kernel.ids import ProcessAddress
from repro.kernel.links import DataArea, LinkAttribute
from tests.conftest import drain, make_bare_system


class TestLifecycle:
    def test_program_runs_and_exits(self):
        system = make_bare_system()
        seen = []

        def program(ctx):
            seen.append("ran")
            yield ctx.exit(0)

        pid = system.spawn(program, machine=0)
        drain(system)
        assert seen == ["ran"]
        assert not system.is_alive(pid)

    def test_falling_off_the_end_terminates(self):
        system = make_bare_system()

        def program(ctx):
            yield ctx.compute(10)

        pid = system.spawn(program, machine=0)
        drain(system)
        assert not system.is_alive(pid)

    def test_exit_code_traced(self):
        system = make_bare_system()

        def program(ctx):
            yield ctx.exit(42)

        system.spawn(program, machine=0)
        drain(system)
        (record,) = system.tracer.records("kernel", "exit")
        assert record.fields["code"] == 42

    def test_repro_error_crashes_process(self):
        system = make_bare_system()

        def program(ctx):
            yield ctx.send(999)  # invalid link id

        pid = system.spawn(program, machine=0)
        drain(system)
        assert not system.is_alive(pid)
        (record,) = system.tracer.records("kernel", "exit")
        assert record.fields["code"] == 1

    def test_program_can_catch_kernel_errors(self):
        system = make_bare_system()
        caught = []

        def program(ctx):
            try:
                yield ctx.send(999)
            except InvalidLinkError as exc:
                caught.append(exc)
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert len(caught) == 1

    def test_yielding_non_syscall_raises_in_program(self):
        system = make_bare_system()
        caught = []

        def program(ctx):
            try:
                yield "not a syscall"
            except KernelError as exc:
                caught.append(str(exc))
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert caught and "not a Syscall" in caught[0]


class TestCompute:
    def test_compute_advances_time(self):
        system = make_bare_system()
        finished = {}

        def program(ctx):
            yield ctx.compute(5_000)
            finished["at"] = ctx.now
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert finished["at"] >= 5_000

    def test_compute_contends_for_cpu(self):
        system = make_bare_system()
        finished = {}

        def make_program(tag):
            def program(ctx):
                yield ctx.compute(5_000)
                finished[tag] = ctx.now
                yield ctx.exit()
            return program

        system.spawn(make_program("a"), machine=0)
        system.spawn(make_program("b"), machine=0)
        drain(system)
        # Two 5ms jobs sharing one CPU need >= 10ms of wall clock.
        assert max(finished.values()) >= 10_000

    def test_parallel_machines_do_not_contend(self):
        system = make_bare_system()
        finished = {}

        def make_program(tag):
            def program(ctx):
                yield ctx.compute(5_000)
                finished[tag] = ctx.now
                yield ctx.exit()
            return program

        system.spawn(make_program("a"), machine=0)
        system.spawn(make_program("b"), machine=1)
        drain(system)
        assert max(finished.values()) < 7_000

    def test_round_robin_interleaves_quanta(self):
        system = make_bare_system(quantum=1_000)
        order = []

        def make_program(tag):
            def program(ctx):
                yield ctx.compute(2_000)
                order.append(tag)
                yield ctx.exit()
            return program

        system.spawn(make_program("a"), machine=0)
        system.spawn(make_program("b"), machine=0)
        drain(system)
        # With a 1ms quantum both 2ms jobs finish within one quantum of
        # each other rather than strictly serially.
        assert sorted(order) == ["a", "b"]

    def test_cpu_accounting(self):
        system = make_bare_system()

        def program(ctx):
            yield ctx.compute(3_000)
            yield ctx.receive()  # park forever

        pid = system.spawn(program, machine=0)
        drain(system)
        state = system.process_state(pid)
        assert state.accounting.cpu_time >= 3_000


class TestSleepAndTimers:
    def test_sleep_blocks_without_cpu(self):
        system = make_bare_system()
        waked = {}

        def sleeper(ctx):
            yield ctx.sleep(10_000)
            waked["at"] = ctx.now
            yield ctx.exit()

        def worker(ctx):
            yield ctx.compute(5_000)
            waked["worker"] = ctx.now
            yield ctx.exit()

        system.spawn(sleeper, machine=0)
        system.spawn(worker, machine=0)
        drain(system)
        assert waked["at"] >= 10_000
        assert waked["worker"] < 10_000  # sleeper did not hold the CPU

    def test_receive_timeout_returns_none(self):
        system = make_bare_system()
        result = {}

        def program(ctx):
            msg = yield ctx.receive(timeout=2_000)
            result["msg"] = msg
            result["at"] = ctx.now
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert result["msg"] is None
        assert result["at"] >= 2_000

    def test_receive_timeout_cancelled_by_arrival(self):
        system = make_bare_system()
        result = {}

        def receiver(ctx):
            msg = yield ctx.receive(timeout=50_000)
            result["op"] = msg.op if msg else None
            yield ctx.exit()

        def sender(ctx, peer):
            link = ctx.bootstrap["peer"]
            yield ctx.send(link, op="hello")
            yield ctx.exit()

        receiver_pid = system.spawn(receiver, machine=0)
        kernel = system.kernel(1)
        kernel.spawn(
            lambda ctx: sender(ctx, receiver_pid),
            name="sender",
            extra_links={"peer": ProcessAddress(receiver_pid, 0)},
        )
        drain(system)
        assert result["op"] == "hello"
        assert system.loop.now < 50_000


class TestLinks:
    def test_create_link_points_to_self(self):
        system = make_bare_system()
        captured = {}

        def program(ctx):
            link_id = yield ctx.create_link()
            captured["link_id"] = link_id
            info = yield ctx.get_info()
            captured["links"] = info["link_count"]
            yield ctx.exit()

        pid = system.spawn(program, machine=0)
        drain(system)
        assert captured["link_id"] > 0
        assert captured["links"] == 1

    def test_create_link_with_bad_data_area_fails(self):
        system = make_bare_system()
        caught = []

        def program(ctx):
            try:
                yield ctx.create_link(
                    LinkAttribute.DATA_READ, DataArea(0, 10**9)
                )
            except Exception as exc:
                caught.append(type(exc).__name__)
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert caught == ["LinkAccessError"]

    def test_dup_and_destroy(self):
        system = make_bare_system()
        counts = []

        def program(ctx):
            link_id = yield ctx.create_link()
            dup_id = yield ctx.dup_link(link_id)
            info = yield ctx.get_info()
            counts.append(info["link_count"])
            yield ctx.destroy_link(dup_id)
            info = yield ctx.get_info()
            counts.append(info["link_count"])
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        assert counts == [2, 1]


class TestGetInfoAndYield:
    def test_get_info_reports_pid_and_machine(self):
        system = make_bare_system()
        captured = {}

        def program(ctx):
            info = yield ctx.get_info()
            captured.update(info)
            yield ctx.exit()

        pid = system.spawn(program, machine=2)
        drain(system)
        assert captured["pid"] == pid
        assert captured["machine"] == 2
        assert captured["migrations"] == 0

    def test_yield_lets_peer_run(self):
        system = make_bare_system()
        order = []

        def polite(ctx):
            order.append("polite-start")
            yield ctx.yield_cpu()
            order.append("polite-end")
            yield ctx.exit()

        def other(ctx):
            order.append("other")
            yield ctx.exit()

        system.spawn(polite, machine=0)
        system.spawn(other, machine=0)
        drain(system)
        assert order.index("other") < order.index("polite-end")
