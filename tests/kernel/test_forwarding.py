"""Tests for forwarding addresses (paper §4, Figure 4-1)."""

from repro.kernel.forwarding import FORWARDING_ADDRESS_BYTES, ForwardingTable
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.messages import MessageKind
from repro.kernel.process_state import ProcessStatus
from tests.conftest import drain, make_bare_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestForwardingTable:
    def test_install_and_lookup(self):
        table = ForwardingTable()
        pid = ProcessId(0, 1)
        table.install(pid, 3, now=100)
        entry = table.lookup(pid)
        assert entry.machine == 3
        assert entry.created_at == 100

    def test_forward_target_counts(self):
        table = ForwardingTable()
        pid = ProcessId(0, 1)
        table.install(pid, 3, now=0)
        assert table.forward_target(pid) == 3
        assert table.forward_target(pid) == 3
        assert table.lookup(pid).forwards == 2
        assert table.total_forwards == 2

    def test_unknown_pid_is_none(self):
        table = ForwardingTable()
        assert table.forward_target(ProcessId(9, 9)) is None

    def test_reinstall_replaces(self):
        table = ForwardingTable()
        pid = ProcessId(0, 1)
        table.install(pid, 3, now=0)
        table.install(pid, 5, now=10)
        assert table.lookup(pid).machine == 5
        assert len(table) == 1

    def test_collect(self):
        table = ForwardingTable()
        pid = ProcessId(0, 1)
        table.install(pid, 3, now=0)
        assert table.collect(pid)
        assert not table.collect(pid)  # idempotent
        assert table.collected == 1

    def test_storage_is_8_bytes_per_entry(self):
        table = ForwardingTable()
        assert FORWARDING_ADDRESS_BYTES == 8
        table.install(ProcessId(0, 1), 1, now=0)
        table.install(ProcessId(0, 2), 2, now=0)
        assert table.storage_bytes == 16

    def test_entries_sorted(self):
        table = ForwardingTable()
        table.install(ProcessId(0, 2), 1, now=0)
        table.install(ProcessId(0, 1), 1, now=0)
        pids = [e.pid for e in table.entries()]
        assert pids == [ProcessId(0, 1), ProcessId(0, 2)]


class TestForwardingBehaviour:
    def test_stale_message_reaches_moved_process(self):
        system = make_bare_system()
        got = []

        def receiver(ctx):
            msg = yield ctx.receive()
            got.append((msg.op, ctx.machine, msg.forward_count))
            yield ctx.exit()

        pid = system.spawn(receiver, machine=0)
        system.migrate(pid, 2)
        drain(system)
        # Stale address: still names machine 0.
        system.kernel(1).send_to_process(
            ProcessAddress(pid, 0), "stale", {}, kind=MessageKind.USER
        )
        drain(system)
        assert got == [("stale", 2, 1)]

    def test_forward_traced(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        system.kernel(2).send_to_process(
            ProcessAddress(pid, 0), "x", {}, kind=MessageKind.USER
        )
        drain(system)
        hits = system.tracer.records("forward", "hit")
        assert len(hits) == 1
        assert hits[0].fields["to"] == 1

    def test_chain_hops_accumulate(self):
        system = make_bare_system(machines=4)
        got = {}

        def receiver(ctx):
            msg = yield ctx.receive()
            got["hops"] = msg.forward_count
            yield ctx.exit()

        pid = system.spawn(receiver, machine=0)
        for dest in (1, 2, 3):
            system.migrate(pid, dest)
            drain(system)
        system.kernel(0).send_to_process(
            ProcessAddress(pid, 0), "chase", {}, kind=MessageKind.USER
        )
        drain(system)
        assert got["hops"] == 3  # 0 -> 1 -> 2 -> 3

    def test_message_during_migration_is_held_not_forwarded(self):
        system = make_bare_system()
        got = []

        def receiver(ctx):
            msg = yield ctx.receive()
            got.append(msg.op)
            yield ctx.exit()

        pid = system.spawn(receiver, machine=0)
        drain(system)
        system.kernel(0).migration.start(pid, 1)
        # Process is IN_MIGRATION on machine 0; this message must be held
        # in its queue and travel with the pending-message forwarding.
        system.kernel(0).send_to_process(
            ProcessAddress(pid, 0), "mid-flight", {}, kind=MessageKind.USER
        )
        state = system.kernel(0).processes[pid]
        assert state.status is ProcessStatus.IN_MIGRATION
        assert len(state.message_queue) == 1
        drain(system)
        assert got == ["mid-flight"]

    def test_forwarding_cost_is_visible_in_kernel_stats(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        for _ in range(4):
            system.kernel(2).send_to_process(
                ProcessAddress(pid, 0), "spam", {}, kind=MessageKind.USER
            )
        drain(system)
        assert system.kernel(0).stats.messages_forwarded == 4
