"""Tests for process ids and addresses (paper Figure 2-1)."""

from repro.kernel.ids import (
    KERNEL_LOCAL_ID,
    PROCESS_ADDRESS_BYTES,
    PROCESS_ID_BYTES,
    ProcessAddress,
    ProcessId,
    kernel_address,
    kernel_pid,
)


class TestProcessId:
    def test_equality_is_by_value(self):
        assert ProcessId(1, 2) == ProcessId(1, 2)
        assert ProcessId(1, 2) != ProcessId(2, 2)

    def test_hashable(self):
        assert len({ProcessId(0, 1), ProcessId(0, 1), ProcessId(0, 2)}) == 2

    def test_immutable(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            ProcessId(0, 1).local_id = 5

    def test_kernel_pid_reserved_local_id(self):
        assert kernel_pid(3) == ProcessId(3, KERNEL_LOCAL_ID)
        assert kernel_pid(3).is_kernel
        assert not ProcessId(3, 1).is_kernel

    def test_str_forms(self):
        assert str(ProcessId(2, 5)) == "p2.5"
        assert str(kernel_pid(2)) == "kernel[2]"

    def test_wire_sizes_match_paper_scale(self):
        # A pid is creating machine + local id; an address adds the
        # last-known machine.  These sizes feed the 6-12B admin payloads.
        assert PROCESS_ID_BYTES == 4
        assert PROCESS_ADDRESS_BYTES == 6


class TestProcessAddress:
    def test_moved_to_changes_only_location(self):
        address = ProcessAddress(ProcessId(0, 1), 0)
        moved = address.moved_to(2)
        assert moved.pid == address.pid
        assert moved.last_known_machine == 2
        assert address.last_known_machine == 0  # original untouched

    def test_moved_to_same_machine_returns_self(self):
        address = ProcessAddress(ProcessId(0, 1), 3)
        assert address.moved_to(3) is address

    def test_kernel_address(self):
        address = kernel_address(4)
        assert address.pid.is_kernel
        assert address.last_known_machine == 4

    def test_str(self):
        assert str(ProcessAddress(ProcessId(1, 2), 3)) == "p1.2@3"
