"""Property-based tests for link-table patching and forwarding-chain
collapse (paper §4-§5).

Two layers:

- pure-structure properties of :class:`LinkTable.retarget_all` and
  :class:`ForwardingTable` under random operation sequences;
- a whole-system property: however a process has migrated, one
  round-trip on a stale link is enough — the link update patches the
  sender's table to the process's *actual* machine and the next message
  needs at most one forward (in practice zero once the table is patched).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel.forwarding import ForwardingTable
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.links import Link, LinkTable
from tests.conftest import drain, make_bare_system

BOUNDED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: a small universe of processes and machines keeps collisions frequent
pids = st.integers(min_value=1, max_value=4).map(lambda n: ProcessId(0, n))
machines = st.integers(min_value=0, max_value=3)


class TestLinkTableProperties:
    @BOUNDED
    @given(
        links=st.lists(st.tuples(pids, machines), max_size=12),
        updates=st.lists(st.tuples(pids, machines), min_size=1, max_size=8),
    )
    def test_retarget_all_patches_exactly_the_stale_links(
        self, links, updates
    ):
        table = LinkTable()
        for pid, machine in links:
            table.insert(Link(ProcessAddress(pid, machine)))
        for target_pid, new_machine in updates:
            stale = sum(
                1
                for lk in table.links_to(target_pid)
                if lk.address.last_known_machine != new_machine
            )
            others_before = [
                (lid, lk.address)
                for lid, lk in table.items()
                if lk.target_pid != target_pid
            ]
            changed = table.retarget_all(target_pid, new_machine)
            # exactly the stale links to the target changed ...
            assert changed == stale
            assert all(
                lk.address.last_known_machine == new_machine
                for lk in table.links_to(target_pid)
            )
            # ... links to other processes were untouched ...
            assert others_before == [
                (lid, lk.address)
                for lid, lk in table.items()
                if lk.target_pid != target_pid
            ]
            # ... and the update is idempotent.
            assert table.retarget_all(target_pid, new_machine) == 0

    @BOUNDED
    @given(path=st.lists(machines, min_size=1, max_size=10))
    def test_forwarding_chain_always_reaches_the_process(self, path):
        """Walk a pid through a random migration path, maintaining each
        machine's forwarding table the way the kernel does (install on
        leave, collect on arrive).  From any machine the chain of
        forwarding addresses must reach the process's current machine
        without cycling."""
        pid = ProcessId(0, 7)
        tables = {m: ForwardingTable() for m in range(4)}
        here = path[0]
        for dest in path[1:]:
            if dest == here:
                continue
            tables[here].install(pid, dest, now=0)
            tables[dest].collect(pid)  # arrival shadows any stale entry
            here = dest
        for start in tables:
            hops = 0
            at = start
            while at != here:
                target = tables[at].forward_target(pid)
                if target is None:
                    break  # no entry: message would be undeliverable here
                at = target
                hops += 1
                assert hops <= len(path), "forwarding chain cycled"
            if start == here or hops:
                assert at == here


def server_program(ctx):
    """Echo server replying with its machine and the request's hop count."""
    while True:
        msg = yield ctx.receive()
        if msg.delivered_link_ids:
            reply = msg.delivered_link_ids[0]
            yield ctx.send(
                reply,
                op="reply",
                payload={"machine": ctx.machine, "fwd": msg.forward_count},
            )
            yield ctx.destroy_link(reply)


def make_probe(transcript, rounds=2, gap=5_000):
    def probe(ctx):
        for i in range(rounds):
            reply_link = yield ctx.create_link()
            yield ctx.send(
                ctx.bootstrap["server"],
                op="ping",
                payload=i,
                links=(reply_link,),
            )
            msg = yield ctx.receive()
            transcript.append(msg.payload["fwd"])
            yield ctx.destroy_link(reply_link)
            yield ctx.sleep(gap)
        yield ctx.receive()  # park so the link table stays inspectable
    return probe


class TestSystemConvergenceProperties:
    @BOUNDED
    @given(
        moves=st.lists(machines, min_size=1, max_size=5),
        client_machine=machines,
    )
    def test_random_migrations_converge_after_one_link_update(
        self, moves, client_machine
    ):
        """Whatever migration path the server took, a client holding the
        original (stale) address is fully patched by the link update from
        its first round-trip: its table then names the server's actual
        machine and the follow-up message forwards at most once."""
        system = make_bare_system(machines=4)
        server_pid = system.spawn(server_program, machine=0, name="server")
        drain(system)
        here = 0
        for dest in moves:
            if dest == here:
                continue
            ticket = system.migrate(server_pid, dest)
            drain(system)
            assert ticket.success
            here = dest

        transcript = []
        probe_pid = system.kernel(client_machine).spawn(
            make_probe(transcript),
            name="probe",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
        drain(system)

        assert len(transcript) == 2
        # After the drained run every link the probe holds to the server
        # names its actual machine (the last applied update wins) ...
        table = system.process_state(probe_pid).link_table
        links = table.links_to(server_pid)
        assert links
        assert all(lk.address.last_known_machine == here for lk in links)
        # ... and the second message needed at most one forward.  (Not
        # always zero: an update from a nearby hop can arrive after the
        # update from a farther one and regress the table by a single
        # position — the paper's "typically ... after the first message".)
        assert transcript[1] <= 1
