"""Tests for links and link tables (paper §2.1, §2.2, §2.4)."""

import pytest

from repro.errors import InvalidLinkError
from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.links import (
    LINK_TABLE_ENTRY_BYTES,
    DataArea,
    Link,
    LinkAttribute,
    LinkSnapshot,
    LinkTable,
    make_reply_link,
    with_data_area,
)


def addr(machine=0, local=1, at=None):
    return ProcessAddress(
        ProcessId(machine, local), at if at is not None else machine
    )


class TestLink:
    def test_target_pid_never_changes_on_retarget(self):
        link = Link(addr())
        link.retarget(5)
        assert link.target_pid == ProcessId(0, 1)
        assert link.address.last_known_machine == 5

    def test_copy_is_independent(self):
        link = Link(addr())
        dup = link.copy()
        dup.retarget(9)
        assert link.address.last_known_machine == 0

    def test_deliver_to_kernel_flag(self):
        assert Link(addr(), LinkAttribute.DELIVER_TO_KERNEL).deliver_to_kernel
        assert not Link(addr()).deliver_to_kernel

    def test_reply_link_is_plain(self):
        link = make_reply_link(addr())
        assert link.attributes == LinkAttribute.NONE

    def test_with_data_area_read_only(self):
        link = with_data_area(addr(), 0, 100)
        assert link.attributes & LinkAttribute.DATA_READ
        assert not link.attributes & LinkAttribute.DATA_WRITE

    def test_with_data_area_writable(self):
        link = with_data_area(addr(), 0, 100, writable=True)
        assert link.attributes & LinkAttribute.DATA_WRITE


class TestDataArea:
    def test_contains_inside(self):
        area = DataArea(100, 50)
        assert area.contains(100, 50)
        assert area.contains(120, 10)

    def test_contains_rejects_overflow(self):
        area = DataArea(100, 50)
        assert not area.contains(100, 51)
        assert not area.contains(99, 10)
        assert not area.contains(160, 1)


class TestLinkSnapshot:
    def test_snapshot_round_trip(self):
        link = with_data_area(addr(), 4, 8)
        snap = LinkSnapshot.of(link)
        revived = snap.materialise()
        assert revived.address == link.address
        assert revived.attributes == link.attributes
        assert revived.data_area == link.data_area

    def test_snapshot_is_immutable_while_enroute(self):
        import dataclasses

        snap = LinkSnapshot.of(Link(addr()))
        with pytest.raises(dataclasses.FrozenInstanceError):
            snap.address = addr(1, 1)


class TestLinkTable:
    def test_insert_and_get(self):
        table = LinkTable()
        link = Link(addr())
        link_id = table.insert(link)
        assert table.get(link_id) is link

    def test_ids_never_reused(self):
        table = LinkTable()
        first = table.insert(Link(addr()))
        table.remove(first)
        second = table.insert(Link(addr()))
        assert second != first

    def test_get_unknown_raises(self):
        with pytest.raises(InvalidLinkError):
            LinkTable().get(99)

    def test_remove_unknown_raises(self):
        with pytest.raises(InvalidLinkError):
            LinkTable().remove(1)

    def test_dup_creates_independent_copy(self):
        table = LinkTable()
        original = table.insert(Link(addr()))
        duplicate = table.dup(original)
        table.get(duplicate).retarget(7)
        assert table.get(original).address.last_known_machine == 0

    def test_contains_and_len(self):
        table = LinkTable()
        link_id = table.insert(Link(addr()))
        assert link_id in table
        assert len(table) == 1

    def test_links_to(self):
        table = LinkTable()
        table.insert(Link(addr(0, 1)))
        table.insert(Link(addr(0, 1)))
        table.insert(Link(addr(0, 2)))
        assert len(table.links_to(ProcessId(0, 1))) == 2

    def test_retarget_all_updates_every_matching_link(self):
        table = LinkTable()
        table.insert(Link(addr(0, 1)))
        table.insert(Link(addr(0, 1)))
        table.insert(Link(addr(0, 2)))
        changed = table.retarget_all(ProcessId(0, 1), 5)
        assert changed == 2
        for link in table.links_to(ProcessId(0, 1)):
            assert link.address.last_known_machine == 5
        assert (
        table.links_to(ProcessId(0, 2))[0].address.last_known_machine == 0
    )

    def test_retarget_all_skips_already_current(self):
        table = LinkTable()
        table.insert(Link(addr(0, 1, at=5)))
        assert table.retarget_all(ProcessId(0, 1), 5) == 0

    def test_swappable_bytes_grow_with_table(self):
        table = LinkTable()
        assert table.swappable_bytes() == 0
        table.insert(Link(addr()))
        assert table.swappable_bytes() == LINK_TABLE_ENTRY_BYTES

    def test_items_sorted_by_id(self):
        table = LinkTable()
        ids = [table.insert(Link(addr())) for _ in range(5)]
        assert [i for i, _ in table.items()] == sorted(ids)
