"""Tests for link updating (paper §5, Figure 5-1)."""

from repro.kernel.ids import ProcessAddress
from repro.kernel.linkupdate import LINK_UPDATE_PAYLOAD_BYTES
from tests.conftest import drain, make_bare_system


def server_program(ctx):
    """Echo server replying with its machine; runs forever."""
    while True:
        msg = yield ctx.receive()
        if msg.delivered_link_ids:
            reply = msg.delivered_link_ids[0]
            yield ctx.send(
                reply,
                op="reply",
                payload={"machine": ctx.machine, "fwd": msg.forward_count},
            )
            yield ctx.destroy_link(reply)


def make_client(transcript, rounds=4, gap=5_000):
    def client(ctx):
        for i in range(rounds):
            reply_link = yield ctx.create_link()
            yield ctx.send(
                ctx.bootstrap["server"],
                op="ping",
                payload=i,
                links=(reply_link,),
            )
            msg = yield ctx.receive()
            transcript.append(
                {
                    "round": i,
                    "machine": msg.payload["machine"],
                    "fwd": msg.payload["fwd"],
                }
            )
            yield ctx.destroy_link(reply_link)
            yield ctx.sleep(gap)
        yield ctx.exit()
    return client


class TestLinkUpdate:
    def test_payload_size_within_control_range(self):
        assert 6 <= LINK_UPDATE_PAYLOAD_BYTES <= 12

    def test_link_updated_after_first_forwarded_message(self):
        """Paper: "Typically, the link is updated after the first
        message." — a client that keeps using a stale link is patched
        after one forward; subsequent messages go direct."""
        system = make_bare_system()
        transcript = []
        server_pid = system.spawn(server_program, machine=0, name="server")
        system.kernel(2).spawn(
            make_client(transcript, rounds=4),
            name="client",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
        # Round 0 lands before migration; then the server moves.
        system.run(until=2_000)
        system.migrate(server_pid, 1)
        drain(system)

        forwarded = [t for t in transcript if t["fwd"] > 0]
        assert len(forwarded) <= 2  # worst case observed in the paper
        assert transcript[-1]["fwd"] == 0  # converged: direct delivery
        assert transcript[-1]["machine"] == 1

    def test_update_patches_sender_link_table(self):
        system = make_bare_system()
        transcript = []
        server_pid = system.spawn(server_program, machine=0, name="server")
        client_pid = system.kernel(2).spawn(
            make_client(transcript, rounds=3),
            name="client",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
        system.run(until=2_000)
        system.migrate(server_pid, 1)
        drain(system)
        client_state = system.tracer  # client has exited; assert via stats
        assert system.kernel(0).stats.link_updates_sent >= 1
        applied = system.kernel(2).stats.link_updates_applied
        retargeted = system.kernel(2).stats.links_retargeted
        assert applied >= 1
        assert retargeted >= 1

    def test_each_forward_generates_exactly_two_extra_messages(self):
        """Paper §6: "Each message that goes through a forwarding address
        generates two additional messages" — the forwarded copy and the
        update back to the sender."""
        system = make_bare_system()

        def one_shot_client(ctx):
            reply_link = yield ctx.create_link()
            yield ctx.send(
                ctx.bootstrap["server"], op="ping", links=(reply_link,)
            )
            yield ctx.receive()
            yield ctx.exit()

        server_pid = system.spawn(server_program, machine=0, name="server")
        drain(system)
        system.migrate(server_pid, 1)
        drain(system)

        fwd_before = system.kernel(0).stats.messages_forwarded
        upd_before = system.kernel(0).stats.link_updates_sent
        system.kernel(2).spawn(
            one_shot_client,
            name="client",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
        drain(system)
        assert system.kernel(0).stats.messages_forwarded - fwd_before == 1
        assert system.kernel(0).stats.link_updates_sent - upd_before == 1

    def test_update_for_exited_sender_is_harmless(self):
        system = make_bare_system()

        def fire_and_forget(ctx):
            yield ctx.send(ctx.bootstrap["server"], op="ping")
            yield ctx.exit()  # gone before the link update arrives

        server_pid = system.spawn(server_program, machine=0, name="server")
        drain(system)
        system.migrate(server_pid, 1)
        drain(system)
        system.kernel(2).spawn(
            fire_and_forget,
            name="client",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
        drain(system)
        # The update found no process; traced, not crashed.
        assert system.tracer.count("linkupd", "no-process") >= 1

    def test_multiple_links_to_same_process_all_updated(self):
        system = make_bare_system()
        observed = {}

        def hoarder(ctx):
            # Duplicate the server link twice, then use the original.
            dup_a = yield ctx.dup_link(ctx.bootstrap["server"])
            dup_b = yield ctx.dup_link(ctx.bootstrap["server"])
            reply_link = yield ctx.create_link()
            yield ctx.send(
                ctx.bootstrap["server"], op="ping", links=(reply_link,)
            )
            yield ctx.receive()
            observed["done"] = True
            yield ctx.receive()  # park so we can inspect the table

        server_pid = system.spawn(server_program, machine=0, name="server")
        drain(system)
        system.migrate(server_pid, 1)
        drain(system)
        hoarder_pid = system.kernel(2).spawn(
            hoarder,
            name="hoarder",
            extra_links={"server": ProcessAddress(server_pid, 0)},
        )
        drain(system)
        assert observed.get("done")
        table = system.process_state(hoarder_pid).link_table
        links = table.links_to(server_pid)
        assert len(links) == 3
        assert all(lk.address.last_known_machine == 1 for lk in links)
