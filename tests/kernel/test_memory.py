"""Tests for memory images and the per-kernel memory manager."""

import pytest

from repro.errors import MemoryError_
from repro.kernel.memory import (MemoryImage, MemoryManager, SegmentKind)


class TestMemoryImage:
    def test_sized_builder(self):
        image = MemoryImage.sized(code=100, data=200, stack=50)
        assert image.total_bytes == 350
        assert image.segment(SegmentKind.CODE).size_bytes == 100

    def test_resident_excludes_swapped(self):
        image = MemoryImage.sized(code=100, data=200, stack=50)
        image.segment(SegmentKind.DATA).swapped_out = True
        assert image.resident_bytes == 150
        assert image.total_bytes == 350

    def test_address_space_contains(self):
        image = MemoryImage.sized(code=100, data=100, stack=100)
        assert image.address_space_contains(0, 300)
        assert image.address_space_contains(250, 50)
        assert not image.address_space_contains(250, 51)
        assert not image.address_space_contains(-1, 10)


class TestMemoryManager:
    def test_attach_accounts_usage(self):
        manager = MemoryManager(capacity_bytes=1_000)
        manager.attach("p", MemoryImage.sized(code=100, data=100, stack=100))
        assert manager.used_bytes == 300
        assert manager.free_bytes == 700

    def test_detach_frees(self):
        manager = MemoryManager(capacity_bytes=1_000)
        manager.attach("p", MemoryImage.sized(code=100, data=100, stack=100))
        manager.detach("p")
        assert manager.used_bytes == 0

    def test_detach_unknown_raises(self):
        with pytest.raises(MemoryError_):
            MemoryManager().detach("ghost")

    def test_attach_swaps_out_victims_to_fit(self):
        manager = MemoryManager(capacity_bytes=1_000)
        manager.attach("a", MemoryImage.sized(code=100, data=600, stack=100))
        manager.attach("b", MemoryImage.sized(code=100, data=300, stack=100))
        assert manager.swap_outs > 0
        assert manager.used_bytes <= 1_000

    def test_attach_fails_when_impossible(self):
        manager = MemoryManager(capacity_bytes=500)
        with pytest.raises(MemoryError_):
            manager.attach("big", MemoryImage.sized(code=600, data=0, stack=0))

    def test_reserve_and_commit(self):
        manager = MemoryManager(capacity_bytes=1_000)
        assert manager.reserve("p", 400)
        assert manager.used_bytes == 400
        image = MemoryImage.sized(code=100, data=200, stack=100)
        manager.commit_reservation("p", image)
        assert manager.used_bytes == 400

    def test_reserve_refused_when_full(self):
        manager = MemoryManager(capacity_bytes=100)
        assert not manager.reserve("p", 500)
        assert manager.used_bytes == 0

    def test_cancel_reservation(self):
        manager = MemoryManager(capacity_bytes=1_000)
        manager.reserve("p", 400)
        manager.cancel_reservation("p")
        assert manager.used_bytes == 0

    def test_commit_without_reservation_raises(self):
        with pytest.raises(MemoryError_):
            MemoryManager().commit_reservation("p", MemoryImage.sized())

    def test_swap_out_and_in(self):
        manager = MemoryManager(capacity_bytes=1_000)
        image = MemoryImage.sized(code=100, data=200, stack=100)
        manager.attach("p", image)
        manager.swap_out("p", SegmentKind.DATA)
        assert manager.used_bytes == 200
        manager.swap_in("p", SegmentKind.DATA)
        assert manager.used_bytes == 400
        assert manager.swap_ins == 1

    def test_swap_out_idempotent(self):
        manager = MemoryManager()
        manager.attach("p", MemoryImage.sized())
        manager.swap_out("p", SegmentKind.DATA)
        manager.swap_out("p", SegmentKind.DATA)
        assert manager.swap_outs == 1

    def test_code_segments_never_chosen_as_victims(self):
        manager = MemoryManager(capacity_bytes=1_000)
        manager.attach("a", MemoryImage.sized(code=800, data=50, stack=50))
        # Only data/stack (100B) can be reclaimed; a 400B reservation
        # cannot fit even after swapping.
        assert not manager.reserve("b", 400)
        code = manager._images["a"].segment(SegmentKind.CODE)
        assert not code.swapped_out


class TestRunningTotalAudit:
    """used_bytes is a pair of running totals; AUDIT re-derives them on
    every read and asserts agreement, so driving a full residency life
    cycle with it on proves the totals never drift."""

    def test_audit_passes_through_full_lifecycle(self, monkeypatch):
        monkeypatch.setattr(MemoryManager, "AUDIT", True)
        manager = MemoryManager(capacity_bytes=1_000)
        manager.attach("a", MemoryImage.sized(code=200, data=200, stack=100))
        assert manager.used_bytes == 500
        manager.swap_out("a", SegmentKind.DATA)
        assert manager.used_bytes == 300
        assert manager.reserve("b", 300)
        assert manager.used_bytes == 600
        manager.commit_reservation(
            "b", MemoryImage.sized(code=100, data=100, stack=100)
        )
        assert manager.used_bytes == 600
        manager.swap_in("a", SegmentKind.DATA)
        assert manager.used_bytes == 800
        assert manager.reserve("c", 150)
        manager.cancel_reservation("c")
        assert manager.used_bytes == 800
        # Over-commit forces _make_room to swap victims out.
        assert manager.reserve("d", 350)
        assert manager.used_bytes <= 1_000
        manager.detach("a")
        manager.detach("b")
        manager.cancel_reservation("d")
        assert manager.used_bytes == 0

    def test_audit_detects_a_drifted_total(self, monkeypatch):
        monkeypatch.setattr(MemoryManager, "AUDIT", True)
        manager = MemoryManager()
        manager.attach("a", MemoryImage.sized())
        manager._resident_total += 1  # simulate a bookkeeping bug
        with pytest.raises(AssertionError):
            manager.used_bytes
