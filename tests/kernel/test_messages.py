"""Tests for the message representation."""

from repro.kernel.ids import ProcessAddress, ProcessId, kernel_address
from repro.kernel.links import LINK_WIRE_BYTES, Link, LinkSnapshot
from repro.kernel.messages import (
    MESSAGE_HEADER_BYTES, Message, MessageKind, control_message
)


def addr(machine=0, local=1):
    return ProcessAddress(ProcessId(machine, local), machine)


class TestMessage:
    def test_wire_bytes_header_plus_payload(self):
        msg = Message(
            dest=addr(),
            sender=addr(1, 2),
            kind=MessageKind.USER,
            op="x",
            payload_bytes=100,
        )
        assert msg.wire_bytes == MESSAGE_HEADER_BYTES + 100

    def test_wire_bytes_counts_enclosed_links(self):
        snap = LinkSnapshot.of(Link(addr()))
        msg = Message(
            dest=addr(),
            sender=addr(1, 2),
            kind=MessageKind.USER,
            op="x",
            payload_bytes=10,
            links=(snap, snap),
        )
        assert msg.wire_bytes == (
            MESSAGE_HEADER_BYTES + 10 + 2 * LINK_WIRE_BYTES
        )

    def test_redirect_rewrites_location_and_counts(self):
        msg = Message(
            dest=addr(), sender=addr(1, 2), kind=MessageKind.USER, op="x"
        )
        original_pid = msg.dest.pid
        msg.redirect(5)
        assert msg.dest.pid == original_pid
        assert msg.dest.last_known_machine == 5
        assert msg.forward_count == 1
        msg.redirect(6)
        assert msg.forward_count == 2

    def test_serials_unique(self):
        a = Message(dest=addr(), sender=addr(), kind=MessageKind.USER, op="x")
        b = Message(dest=addr(), sender=addr(), kind=MessageKind.USER, op="x")
        assert a.serial != b.serial

    def test_repr_flags(self):
        msg = Message(
            dest=addr(),
            sender=addr(),
            kind=MessageKind.USER,
            op="x",
            deliver_to_kernel=True,
        )
        msg.redirect(3)
        text = repr(msg)
        assert "D2K" in text and "fwd=1" in text

    def test_control_message_builder(self):
        msg = control_message(
            dest=kernel_address(2),
            sender=kernel_address(0),
            op="mig-request",
            payload={"pid": 1},
            payload_bytes=12,
        )
        assert msg.kind is MessageKind.CONTROL
        assert msg.category == "admin"
        assert msg.dest.pid.is_kernel
