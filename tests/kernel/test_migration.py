"""Tests for the eight-step migration mechanism (paper §3.1)."""

import pytest

from repro.errors import MigrationError
from repro.kernel.ids import ProcessAddress, kernel_pid
from repro.kernel.messages import MessageKind
from repro.kernel.ops import (
    ADMIN_MESSAGES_PER_MIGRATION, ADMIN_PAYLOAD_BYTES, OP_MIGRATE_PROCESS
)
from repro.kernel.process_state import ProcessStatus
from tests.conftest import drain, make_bare_system


def parked(ctx):
    """A process that waits forever."""
    yield ctx.receive()
    yield ctx.exit()


class TestBasicMigration:
    def test_pid_is_preserved(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 2)
        drain(system)
        assert system.where_is(pid) == 2
        state = system.process_state(pid)
        assert state.pid == pid

    def test_exactly_nine_admin_messages(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 1)
        drain(system)
        assert ticket.success
        assert (
            ticket.record.admin_message_count == ADMIN_MESSAGES_PER_MIGRATION
        )

    def test_admin_payloads_in_6_to_12_byte_range(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 1)
        drain(system)
        for op, size in ticket.record.admin_messages:
            assert 6 <= size <= 12, f"{op} payload {size}B outside 6-12B"

    def test_three_data_moves(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 1)
        drain(system)
        assert set(ticket.record.segment_bytes) == {
            "resident", "swappable", "program"
        }
        assert ticket.record.segment_bytes["resident"] == 250

    def test_steps_traced_in_order(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        steps = [
            r.event
            for r in system.tracer.records("migrate")
            if r.event.startswith("step")
        ]
        assert steps == [
            "step1-freeze",
            "step2-request",
            "step3-allocate",
            "step4-state",
            "step4-state",
            "step5-program",
            "step6-forward-pending",
            "step7-cleanup",
            "step8-restart",
        ]

    def test_memory_moves_between_machines(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        source_used = system.kernel(0).memory.used_bytes
        system.migrate(pid, 1)
        drain(system)
        assert system.kernel(0).memory.used_bytes < source_used
        assert system.kernel(1).memory.used_bytes > 0

    def test_forwarding_address_left_behind(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 2)
        drain(system)
        entry = system.kernel(0).forwarding.lookup(pid)
        assert entry is not None
        assert entry.machine == 2
        assert entry.size_bytes == 8

    def test_migration_counted_in_accounting(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        assert system.process_state(pid).accounting.migrations == 1

    def test_residence_history_tracks_path(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        system.migrate(pid, 2)
        drain(system)
        assert system.process_state(pid).residence_history == [0, 1, 2]


class TestStatusPreservation:
    def test_waiting_process_still_waiting_after_move(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        drain(system)  # let it block in Receive
        system.migrate(pid, 1)
        drain(system)
        assert (
            system.process_state(pid).status is ProcessStatus.WAITING_MESSAGE
        )

    def test_computing_process_finishes_on_destination(self):
        system = make_bare_system()
        finished = {}

        def cruncher(ctx):
            yield ctx.compute(20_000)
            finished["machine"] = ctx.machine
            finished["at"] = ctx.now
            yield ctx.exit()

        pid = system.spawn(cruncher, machine=0)
        system.loop.call_at(5_000, lambda: system.migrate(pid, 2))
        drain(system)
        assert finished["machine"] == 2
        assert finished["at"] >= 20_000

    def test_suspended_process_stays_suspended(self):
        system = make_bare_system()

        def victim(ctx):
            while True:
                yield ctx.compute(1_000)

        pid = system.spawn(victim, machine=0)
        system.kernel(1).send_to_process(
            ProcessAddress(pid, 0), "stop-process", {}, deliver_to_kernel=True
        )
        system.run(until=10_000)
        assert system.process_state(pid).status is ProcessStatus.SUSPENDED
        system.migrate(pid, 2)
        drain(system)
        assert system.process_state(pid).status is ProcessStatus.SUSPENDED
        assert system.where_is(pid) == 2

    def test_sleeping_process_wakes_on_destination(self):
        system = make_bare_system()
        woke = {}

        def sleeper(ctx):
            yield ctx.sleep(30_000)
            woke["machine"] = ctx.machine
            woke["at"] = ctx.now
            yield ctx.exit()

        pid = system.spawn(sleeper, machine=0)
        system.loop.call_at(5_000, lambda: system.migrate(pid, 1))
        drain(system)
        assert woke["machine"] == 1
        assert woke["at"] >= 30_000

    def test_receive_timeout_survives_migration(self):
        system = make_bare_system()
        result = {}

        def waiter(ctx):
            msg = yield ctx.receive(timeout=40_000)
            result["msg"] = msg
            result["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(waiter, machine=0)
        system.loop.call_at(5_000, lambda: system.migrate(pid, 1))
        drain(system)
        assert result["msg"] is None
        assert result["machine"] == 1


class TestPendingMessages:
    def test_queued_messages_forwarded_with_process(self):
        system = make_bare_system()
        received = []

        final = {}

        def busy_receiver(ctx):
            yield ctx.compute(10_000)  # stay busy while messages pile up
            for _ in range(5):
                msg = yield ctx.receive()
                received.append(msg.payload)
            final["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(busy_receiver, machine=0)

        def blast():
            kernel = system.kernel(1)
            for i in range(5):
                kernel.send_to_process(
                    ProcessAddress(pid, 0), "data", i, kind=MessageKind.USER
                )

        system.loop.call_at(1_000, blast)
        ticket = system.migrate(pid, 2)
        drain(system)
        assert sorted(received) == [0, 1, 2, 3, 4]
        assert final["machine"] == 2

    def test_pending_count_recorded(self):
        system = make_bare_system()

        def idle(ctx):
            yield ctx.compute(5_000)
            while True:
                yield ctx.receive()

        pid = system.spawn(idle, machine=0)
        kernel = system.kernel(0)
        drain(system)
        # Park three messages in its queue while frozen: freeze first.
        state = system.process_state(pid)
        assert state.status is ProcessStatus.WAITING_MESSAGE
        # Deliver messages, then freeze before it consumes them all: do
        # the opposite — freeze by migrating a process with a stuffed
        # queue.  Stuff the queue directly via local sends from a peer
        # that never yields the CPU to the receiver.
        ticket = system.migrate(pid, 1)
        from repro.kernel.messages import MessageKind

        for i in range(3):
            kernel.send_to_process(
                ProcessAddress(pid, 0), "late", i, kind=MessageKind.USER
            )
        drain(system)
        assert ticket.success
        assert ticket.record.pending_forwarded >= 0  # counted, not lost
        state = system.process_state(pid)
        assert state is not None


class TestValidationAndRefusal:
    def test_migrating_kernel_rejected(self):
        system = make_bare_system()
        with pytest.raises(MigrationError):
            system.kernel(0).migration.start(kernel_pid(0), 1)

    def test_unknown_destination_rejected(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        with pytest.raises(MigrationError):
            system.kernel(0).migration.start(pid, 99)

    def test_noop_migration_to_same_machine(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        assert system.kernel(0).migration.start(pid, 0) is False

    def test_double_migration_request_ignored(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        assert system.kernel(0).migration.start(pid, 1) is True
        assert system.kernel(0).migration.start(pid, 2) is False
        drain(system)
        assert system.where_is(pid) == 1

    def test_policy_refusal_restores_process(self):
        system = make_bare_system()
        system.kernel(1).config.accept_migration = lambda pid, size: False
        pid = system.spawn(parked, machine=0)
        drain(system)
        ticket = system.migrate(pid, 1)
        drain(system)
        assert ticket.success is False
        assert ticket.record.refusal_reason == "destination policy"
        assert system.where_is(pid) == 0
        state = system.process_state(pid)
        assert state.status is ProcessStatus.WAITING_MESSAGE

    def test_refusal_uses_two_admin_messages(self):
        system = make_bare_system()
        system.kernel(1).config.accept_migration = lambda pid, size: False
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 1)
        drain(system)
        assert ticket.record.admin_message_count == 2

    def test_memory_pressure_refusal(self):
        system = make_bare_system()
        system.kernel(1).memory.capacity_bytes = 100  # nothing fits
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 1)
        drain(system)
        assert ticket.success is False
        assert ticket.record.refusal_reason == "no memory"
        assert system.where_is(pid) == 0

    def test_process_still_works_after_refusal(self):
        system = make_bare_system()
        system.kernel(1).config.accept_migration = lambda pid, size: False
        log = []

        def worker(ctx):
            msg = yield ctx.receive()
            log.append(msg.op)
            yield ctx.exit()

        pid = system.spawn(worker, machine=0)
        ticket = system.migrate(pid, 1)
        drain(system)
        assert ticket.success is False
        from repro.kernel.messages import MessageKind

        system.kernel(2).send_to_process(
            ProcessAddress(pid, 0), "after-refusal", {}, kind=MessageKind.USER
        )
        drain(system)
        assert log == ["after-refusal"]


class TestSelfMigrationAndDirectives:
    def test_self_requested_migration(self):
        system = make_bare_system()
        trail = {}

        def nomad(ctx):
            trail["before"] = ctx.machine
            yield ctx.request_migration(2)
            yield ctx.compute(1_000)
            trail["after"] = ctx.machine
            yield ctx.exit()

        system.spawn(nomad, machine=0)
        drain(system)
        assert trail == {"before": 0, "after": 2}

    def test_migrate_directive_via_d2k(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.kernel(2).send_to_process(
            ProcessAddress(pid, 0),
            OP_MIGRATE_PROCESS,
            {"dest": 1},
            deliver_to_kernel=True,
        )
        drain(system)
        assert system.where_is(pid) == 1

    def test_migrate_directive_follows_moved_process(self):
        """A directive sent with a stale address chases the process via
        its forwarding address — control follows the process (§2.2)."""
        system = make_bare_system(machines=4)
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        # Directive still addressed to machine 0 (stale).
        system.kernel(3).send_to_process(
            ProcessAddress(pid, 0),
            OP_MIGRATE_PROCESS,
            {"dest": 2},
            deliver_to_kernel=True,
        )
        drain(system)
        assert system.where_is(pid) == 2

    def test_directive_during_migration_is_held_then_applied(self):
        system = make_bare_system(machines=4)
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)  # freeze + start moving
        # While in migration, a second directive arrives at the source.
        system.kernel(0).send_to_process(
            ProcessAddress(pid, 0),
            OP_MIGRATE_PROCESS,
            {"dest": 3},
            deliver_to_kernel=True,
        )
        drain(system)
        # Held during the first move, executed on restart: ends up on 3.
        assert system.where_is(pid) == 3


class TestChains:
    def test_chained_forwarding_addresses(self):
        system = make_bare_system(machines=4)
        pid = system.spawn(parked, machine=0)
        for dest in (1, 2, 3):
            system.migrate(pid, dest)
            drain(system)
        assert system.kernel(0).forwarding.lookup(pid).machine == 1
        assert system.kernel(1).forwarding.lookup(pid).machine == 2
        assert system.kernel(2).forwarding.lookup(pid).machine == 3
        assert system.where_is(pid) == 3

    def test_migrating_back_supersedes_forwarding_address(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        system.migrate(pid, 0)
        drain(system)
        assert system.where_is(pid) == 0
        assert system.kernel(0).forwarding.lookup(pid) is None

    def test_forwarding_gc_on_death(self):
        system = make_bare_system(machines=4)

        def mortal(ctx):
            while True:
                msg = yield ctx.receive()
                if msg.op == "die":
                    yield ctx.exit()

        pid = system.spawn(mortal, machine=0)
        for dest in (1, 2, 3):
            system.migrate(pid, dest)
            drain(system)
        assert len(system.kernel(0).forwarding) == 1
        from repro.kernel.messages import MessageKind

        system.kernel(3).send_to_process(
            ProcessAddress(pid, 3), "die", {}, kind=MessageKind.USER
        )
        drain(system)
        # Backward pointers collected every forwarding address.
        assert system.total_forwarding_entries() == 0
