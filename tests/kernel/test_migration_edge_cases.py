"""Edge cases of the migration mechanism beyond the happy path."""

from repro.kernel.ids import ProcessAddress
from repro.kernel.memory import MemoryImage, SegmentKind
from repro.kernel.messages import MessageKind
from repro.kernel.process_state import ProcessStatus
from tests.conftest import drain, make_bare_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestConcurrentMigrations:
    def test_two_processes_swap_machines_simultaneously(self):
        """Crossing migrations: A goes 0->1 while B goes 1->0."""
        system = make_bare_system()
        a = system.spawn(parked, machine=0, name="a")
        b = system.kernel(1).spawn(parked, name="b")
        ticket_a = system.migrate(a, 1)
        ticket_b = system.migrate(b, 0)
        drain(system)
        assert ticket_a.success and ticket_b.success
        assert system.where_is(a) == 1
        assert system.where_is(b) == 0

    def test_many_processes_to_same_destination(self):
        system = make_bare_system()
        pids = [system.spawn(parked, machine=0) for _ in range(5)]
        tickets = [system.migrate(pid, 2) for pid in pids]
        drain(system)
        assert all(t.success for t in tickets)
        assert all(system.where_is(pid) == 2 for pid in pids)
        # Each used its own nine admin messages.
        for ticket in tickets:
            assert ticket.record.admin_message_count == 9

    def test_pipeline_of_migrations_same_process(self):
        """A second directive issued the moment the first finishes."""
        system = make_bare_system(machines=4)
        pid = system.spawn(parked, machine=0)

        hops = []

        def chain(success, record):
            hops.append(record.dest)
            if record.dest < 3:
                system.kernel(record.dest).migration.start(
                    pid, record.dest + 1, on_done=chain
                )

        system.kernel(0).migration.start(pid, 1, on_done=chain)
        drain(system)
        assert hops == [1, 2, 3]
        assert system.where_is(pid) == 3


class TestLinksInTransit:
    def test_enclosed_link_in_pending_message_survives_migration(self):
        """"Links may be either in some process's link table or in a
        message that is enroute to a process" — a link enclosed in a
        message that is *queued during the migration* must still work
        after delivery on the destination."""
        system = make_bare_system(machines=4)
        echoed = []

        def origin(ctx):  # will receive through the in-transit link
            msg = yield ctx.receive()
            echoed.append((msg.op, msg.sender.pid))
            yield ctx.exit()

        def mover(ctx):  # migrates with the link-bearing message queued
            msg = yield ctx.receive()
            link_to_origin = msg.delivered_link_ids[0]
            yield ctx.send(link_to_origin, op="used-after-move")
            yield ctx.exit()

        origin_pid = system.spawn(origin, machine=0, name="origin")
        mover_pid = system.kernel(1).spawn(parked_free := mover, name="mover")

        # Freeze the mover, then send it a message carrying a link.
        ticket = system.migrate(mover_pid, 2)

        def seeder(ctx):
            yield ctx.send(
                ctx.bootstrap["mover"],
                op="carry",
                links=(ctx.bootstrap["origin"],),
            )
            yield ctx.exit()

        system.kernel(3).spawn(
            seeder,
            name="seeder",
            extra_links={
                "mover": ProcessAddress(mover_pid, 1),
                "origin": ProcessAddress(origin_pid, 0),
            },
        )
        drain(system)
        assert ticket.success
        assert echoed == [("used-after-move", mover_pid)]


class TestSwappedMemory:
    def test_migrating_process_with_swapped_segments(self):
        """Step 5: "the kernel move data operation handles reading or
        writing of swapped out memory" — a partially swapped process
        migrates whole."""
        system = make_bare_system()
        pid = system.spawn(
            parked,
            machine=0,
            memory=MemoryImage.sized(code=4_000, data=8_000, stack=1_000),
        )
        system.kernel(0).memory.swap_out(pid, SegmentKind.DATA)
        state_before = system.process_state(pid)
        assert state_before.memory.resident_bytes == 5_000
        ticket = system.migrate(pid, 1)
        drain(system)
        assert ticket.success
        state = system.process_state(pid)
        # The full image (swapped included) was transferred and the swap
        # flags travel with the segments.
        assert ticket.record.segment_bytes["program"] == 13_000
        assert state.memory.segment(SegmentKind.DATA).swapped_out
        assert state.memory.resident_bytes == 5_000

    def test_migration_reservation_released_on_refusal(self):
        system = make_bare_system()
        system.kernel(1).config.accept_migration = lambda pid, size: False
        pid = system.spawn(parked, machine=0)
        before = system.kernel(1).memory.used_bytes
        ticket = system.migrate(pid, 1)
        drain(system)
        assert ticket.success is False
        assert system.kernel(1).memory.used_bytes == before

    def test_memory_accounting_balanced_after_round_trip(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        baseline_0 = system.kernel(0).memory.used_bytes
        baseline_1 = system.kernel(1).memory.used_bytes
        system.migrate(pid, 1)
        drain(system)
        system.migrate(pid, 0)
        drain(system)
        assert system.kernel(0).memory.used_bytes == baseline_0
        assert system.kernel(1).memory.used_bytes == baseline_1


class TestSuspensionInteractions:
    def test_stop_during_compute_preserves_remaining_work(self):
        system = make_bare_system()
        finished = {}

        def cruncher(ctx):
            yield ctx.compute(20_000)
            finished["at"] = ctx.now
            yield ctx.exit()

        pid = system.spawn(cruncher, machine=0)
        addr = ProcessAddress(pid, 0)
        kernel = system.kernel(1)
        system.loop.call_at(
            5_000,
            lambda: kernel.send_to_process(
                addr, "stop-process", {}, deliver_to_kernel=True
            ),
        )
        system.run(until=50_000)
        assert "at" not in finished
        state = system.process_state(pid)
        assert state.status is ProcessStatus.SUSPENDED
        # Progress made so far is preserved; restart finishes the rest.
        kernel.send_to_process(
            addr, "start-process", {}, deliver_to_kernel=True
        )
        drain(system)
        assert finished["at"] >= 20_000

    def test_migrate_then_stop_then_start_across_machines(self):
        system = make_bare_system()
        finished = {}

        def cruncher(ctx):
            yield ctx.compute(30_000)
            finished["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(cruncher, machine=0)
        addr = ProcessAddress(pid, 0)  # stays stale on purpose
        control = system.kernel(2)
        system.loop.call_at(2_000, lambda: system.migrate(pid, 1))
        system.loop.call_at(
            20_000,
            lambda: control.send_to_process(
                addr, "stop-process", {}, deliver_to_kernel=True
            ),
        )
        system.loop.call_at(
            40_000,
            lambda: control.send_to_process(
                addr, "start-process", {}, deliver_to_kernel=True
            ),
        )
        drain(system)
        assert finished["machine"] == 1


class TestExitDuringTraffic:
    def test_exit_with_queued_messages_is_clean(self):
        system = make_bare_system()

        def eager_exit(ctx):
            yield ctx.compute(5_000)
            yield ctx.exit()

        pid = system.spawn(eager_exit, machine=0)
        kernel = system.kernel(1)
        for i in range(5):
            kernel.send_to_process(
                ProcessAddress(pid, 0), "noise", i, kind=MessageKind.USER
            )
        drain(system)
        assert not system.is_alive(pid)
        assert pid in system.kernel(0).dead
