"""Miscellaneous kernel behaviours: unknown ops, trace filtering,
stats accessors, and defensive paths."""

from repro.kernel.ids import ProcessAddress, ProcessId, kernel_address
from repro.kernel.messages import Message, MessageKind
from tests.conftest import drain, make_bare_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestUnknownOps:
    def test_unknown_kernel_control_is_traced_not_fatal(self):
        system = make_bare_system()
        system.kernel(0).send_control(
            1, "made-up-op", {}, payload_bytes=6, category="control"
        )
        drain(system)
        assert system.tracer.count("kernel", "unknown-control") == 1

    def test_unknown_d2k_op_is_traced_not_fatal(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.kernel(1).send_to_process(
            ProcessAddress(pid, 0), "made-up-d2k", {}, deliver_to_kernel=True
        )
        drain(system)
        assert system.tracer.count("kernel", "unknown-d2k") == 1
        assert system.is_alive(pid)

    def test_undeliverable_link_update_is_dropped_silently(self):
        """A link update whose target kernel has no such process must
        not cascade into NACK loops."""
        from repro.kernel.linkupdate import LinkUpdate, build_link_update

        system = make_bare_system()
        update = build_link_update(
            forwarder_machine=0,
            update=LinkUpdate(ProcessId(1, 99), ProcessId(0, 5), 2),
            sender_machine=1,
        )
        system.kernel(0).route_message(update)
        drain(system)
        assert system.tracer.count("linkupd", "no-process") == 1
        assert all(k.stats.nacks_sent == 0 for k in system.kernels)


class TestTraceFiltering:
    def test_trace_categories_config_filters(self):
        system = make_bare_system(trace_categories=("migrate",))
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        categories = {r.category for r in system.tracer}
        assert categories == {"migrate"}
        assert system.tracer.dropped > 0

    def test_trace_ring_buffer_bound(self):
        system = make_bare_system(max_trace_records=10)
        for _ in range(5):
            pid = system.spawn(parked, machine=0)
        drain(system)
        assert len(system.tracer) <= 10


class TestStatsAndRepr:
    def test_kernel_stats_bump(self):
        system = make_bare_system()
        kernel = system.kernel(0)
        kernel.stats.bump("custom")
        kernel.stats.bump("custom")
        assert kernel.stats.extra_by_op["custom"] == 2

    def test_kernel_repr(self):
        system = make_bare_system()
        assert "machine=0" in repr(system.kernel(0))

    def test_system_repr(self):
        system = make_bare_system()
        assert "machines=3" in repr(system)

    def test_local_vs_remote_send_stats(self):
        system = make_bare_system()
        a = system.spawn(parked, machine=0)
        kernel = system.kernel(0)
        kernel.send_to_process(
            ProcessAddress(a, 0), "local", {}, kind=MessageKind.USER
        )
        kernel.send_to_process(kernel_address(1).moved_to(1), "remote", {})
        drain(system)
        assert kernel.stats.messages_sent_local >= 1
        assert kernel.stats.messages_sent_remote >= 1

    def test_find_process(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        assert system.kernel(0).find_process(pid) is not None
        assert system.kernel(1).find_process(pid) is None


class TestDefensivePaths:
    def test_message_to_kernel_of_crashless_machine_handled(self):
        """Kernel-addressed message with an unregistered op on a healthy
        machine must not produce undeliverable handling."""
        system = make_bare_system()
        message = Message(
            dest=kernel_address(1),
            sender=kernel_address(0),
            kind=MessageKind.CONTROL,
            op="nonsense",
            payload_bytes=6,
        )
        system.kernel(0).route_message(message)
        drain(system)
        assert system.kernel(1).stats.undeliverable == 0

    def test_spawn_beyond_memory_capacity_raises(self):
        import pytest

        from repro.errors import MemoryError_
        from repro.kernel.memory import MemoryImage

        system = make_bare_system(memory_capacity=10_000)
        with pytest.raises(MemoryError_):
            system.kernel(0).spawn(
                parked, memory=MemoryImage.sized(code=50_000, data=0, stack=0)
            )

    def test_terminate_is_idempotent(self):
        system = make_bare_system()

        def brief(ctx):
            yield ctx.exit()

        pid = system.spawn(brief, machine=0)
        drain(system)
        # Second terminate attempt: the pid is gone; UnknownProcessError.
        import pytest

        from repro.errors import UnknownProcessError

        with pytest.raises(UnknownProcessError):
            system.kernel(0).terminate(pid)
