"""Tests for priority scheduling (dispatch info in the process state)."""

from repro.kernel.ids import ProcessId
from repro.kernel.scheduler import RoundRobinScheduler
from tests.conftest import drain, make_bare_system


def pid(n):
    return ProcessId(0, n)


class TestSchedulerPriorities:
    def test_higher_priority_dispatches_first(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1), priority=0)
        sched.enqueue(pid(2), priority=5)
        sched.enqueue(pid(3), priority=0)
        assert sched.pick_next() == pid(2)

    def test_fifo_within_priority(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1), priority=3)
        sched.enqueue(pid(2), priority=3)
        assert sched.pick_next() == pid(1)
        sched.release_cpu(pid(1))
        assert sched.pick_next() == pid(2)

    def test_remove_respects_priority_queues(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1), priority=1)
        sched.enqueue(pid(2), priority=2)
        sched.remove(pid(2))
        assert sched.pick_next() == pid(1)
        assert len(sched) == 0

    def test_queued_pids_ordered_by_priority_then_fifo(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1), priority=0)
        sched.enqueue(pid(2), priority=9)
        sched.enqueue(pid(3), priority=0)
        assert sched.queued_pids() == [pid(2), pid(1), pid(3)]

    def test_negative_priority_runs_last(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1), priority=-1)
        sched.enqueue(pid(2), priority=0)
        assert sched.pick_next() == pid(2)


class TestPriorityBehaviour:
    def test_high_priority_job_finishes_first(self):
        system = make_bare_system()
        order = []

        def make_job(tag):
            def job(ctx):
                yield ctx.compute(20_000)
                order.append(tag)
                yield ctx.exit()
            return job

        # Spawn the low-priority job first so FIFO would favour it.
        system.kernel(0).spawn(make_job("low"), name="low", priority=0)
        system.kernel(0).spawn(make_job("high"), name="high", priority=5)
        drain(system)
        assert order == ["high", "low"]

    def test_priority_travels_with_migration(self):
        system = make_bare_system()
        order = []

        def make_job(tag, total):
            def job(ctx):
                yield ctx.compute(total)
                order.append(tag)
                yield ctx.exit()
            return job

        vip = system.kernel(0).spawn(
            make_job("vip", 30_000), name="vip", priority=7
        )
        system.migrate(vip, 1)
        # Competition waiting on the destination.
        system.kernel(1).spawn(make_job("peasant", 30_000), name="p")
        drain(system)
        assert system.process_state(vip) is None  # exited
        assert order[0] == "vip"
