"""Tests for the process state object (paper Figure 2-2, §6 sizes)."""

import pytest

from repro.errors import ProcessStateError
from repro.kernel.ids import ProcessId
from repro.kernel.links import Link
from repro.kernel.process_state import (
    RESIDENT_STATE_BYTES,
    SWAPPABLE_STATE_BASE_BYTES,
    ProcessState,
    ProcessStatus,
)
from repro.kernel.ids import ProcessAddress


def make_state(status=ProcessStatus.READY):
    state = ProcessState(pid=ProcessId(0, 1))
    state.status = status
    return state


class TestSizes:
    def test_resident_state_is_about_250_bytes(self):
        assert make_state().resident_state_bytes == 250
        assert RESIDENT_STATE_BYTES == 250

    def test_swappable_state_depends_on_link_table(self):
        state = make_state()
        empty = state.swappable_state_bytes
        assert empty == SWAPPABLE_STATE_BASE_BYTES
        for local in range(10):
            state.link_table.insert(
                Link(ProcessAddress(ProcessId(0, local + 2), 0))
            )
        # Ten links bring the swappable state to the paper's ~600 bytes.
        assert state.swappable_state_bytes == 600

    def test_program_bytes_are_memory_total(self):
        state = make_state()
        assert state.program_bytes == state.memory.total_bytes


class TestMigrationTransitions:
    def test_begin_records_status_and_freezes(self):
        state = make_state(ProcessStatus.WAITING_MESSAGE)
        state.begin_migration()
        assert state.status is ProcessStatus.IN_MIGRATION
        assert state.saved_status is ProcessStatus.WAITING_MESSAGE

    def test_running_recorded_as_ready(self):
        state = make_state(ProcessStatus.RUNNING)
        state.begin_migration()
        assert state.saved_status is ProcessStatus.READY

    def test_complete_restores_recorded_status(self):
        state = make_state(ProcessStatus.SUSPENDED)
        state.begin_migration()
        state.complete_migration()
        assert state.status is ProcessStatus.SUSPENDED
        assert state.saved_status is None
        assert state.accounting.migrations == 1

    def test_abort_restores_without_counting(self):
        state = make_state(ProcessStatus.READY)
        state.begin_migration()
        state.abort_migration()
        assert state.status is ProcessStatus.READY
        assert state.accounting.migrations == 0

    def test_double_begin_rejected(self):
        state = make_state()
        state.begin_migration()
        with pytest.raises(ProcessStateError):
            state.begin_migration()

    def test_begin_on_terminated_rejected(self):
        state = make_state(ProcessStatus.TERMINATED)
        with pytest.raises(ProcessStateError):
            state.begin_migration()

    def test_complete_without_begin_rejected(self):
        with pytest.raises(ProcessStateError):
            make_state().complete_migration()

    def test_abort_without_begin_rejected(self):
        with pytest.raises(ProcessStateError):
            make_state().abort_migration()

    def test_sleeping_status_survives_round_trip(self):
        state = make_state(ProcessStatus.SLEEPING)
        state.begin_migration()
        state.complete_migration()
        assert state.status is ProcessStatus.SLEEPING


class TestQueue:
    def test_queued_message_count(self):
        state = make_state()
        assert state.queued_message_count == 0
        state.message_queue.append(object())
        assert state.queued_message_count == 1

    def test_repr_is_informative(self):
        text = repr(make_state())
        assert "p0.1" in text and "ready" in text
