"""Tests for kernel-level remote process creation (OP_SPAWN)."""

from repro.kernel.ids import ProcessAddress, kernel_address
from repro.kernel.ops import OP_SPAWN, OP_SPAWN_REPLY
from tests.conftest import drain, make_bare_system


def register_trivial(system, log):
    def trivial(ctx, tag=0):
        log.append(("ran", tag, ctx.machine))
        yield ctx.exit()

    for kernel in system.kernels:
        kernel.register_program("trivial", trivial)


class TestRemoteSpawn:
    def test_spawn_request_creates_process(self):
        system = make_bare_system()
        log = []
        register_trivial(system, log)
        system.kernel(0).send_control(
            1,
            OP_SPAWN,
            {"program": "trivial", "params": {"tag": 7}, "name": "t"},
            payload_bytes=24,
            category="control",
        )
        drain(system)
        assert log == [("ran", 7, 1)]

    def test_spawn_reply_carries_pid_and_control_link(self):
        system = make_bare_system()
        log = []
        register_trivial(system, log)
        replies = []

        def requester(ctx):
            yield ctx.send(
                ctx.bootstrap["kernel1"],
                op=OP_SPAWN,
                payload={
                    "program": "trivial",
                    "name": "child",
                    "reply_to": ProcessAddress(ctx.pid, ctx.machine),
                    "req_id": 5,
                },
                payload_bytes=24,
            )
            msg = yield ctx.receive()
            replies.append(msg)
            yield ctx.exit()

        system.kernel(0).spawn(
            requester,
            name="requester",
            extra_links={"kernel1": kernel_address(1)},
        )
        drain(system)
        (reply,) = replies
        assert reply.op == OP_SPAWN_REPLY
        assert reply.payload["ok"] and reply.payload["req_id"] == 5
        assert reply.payload["machine"] == 1
        # A DELIVERTOKERNEL control link was enclosed.
        assert len(reply.delivered_link_ids) == 1

    def test_spawn_unknown_program_reports_error(self):
        system = make_bare_system()
        replies = []

        def requester(ctx):
            yield ctx.send(
                ctx.bootstrap["kernel1"],
                op=OP_SPAWN,
                payload={
                    "program": "does-not-exist",
                    "reply_to": ProcessAddress(ctx.pid, ctx.machine),
                    "req_id": 1,
                },
                payload_bytes=24,
            )
            msg = yield ctx.receive()
            replies.append(msg.payload)
            yield ctx.exit()

        system.kernel(0).spawn(
            requester,
            name="requester",
            extra_links={"kernel1": kernel_address(1)},
        )
        drain(system)
        assert replies[0]["ok"] is False
        assert "unknown program" in replies[0]["error"]

    def test_spawn_without_reply_to_is_fire_and_forget(self):
        system = make_bare_system()
        log = []
        register_trivial(system, log)
        system.kernel(0).send_control(
            2,
            OP_SPAWN,
            {"program": "trivial"},
            payload_bytes=24,
            category="control",
        )
        drain(system)
        assert log and log[0][2] == 2

    def test_control_link_from_reply_can_migrate_child(self):
        system = make_bare_system()
        log = []

        def longlived(ctx):
            while True:
                yield ctx.receive()

        for kernel in system.kernels:
            kernel.register_program("longlived", longlived)
        child_pid = {}

        def requester(ctx):
            yield ctx.send(
                ctx.bootstrap["kernel1"],
                op=OP_SPAWN,
                payload={
                    "program": "longlived",
                    "reply_to": ProcessAddress(ctx.pid, ctx.machine),
                    "req_id": 1,
                },
                payload_bytes=24,
            )
            msg = yield ctx.receive()
            child_pid["pid"] = msg.payload["pid"]
            control = msg.delivered_link_ids[0]
            yield ctx.send(
                control,
                op="migrate-process",
                payload={"dest": 2},
                deliver_to_kernel=True,
            )
            yield ctx.exit()

        system.kernel(0).spawn(
            requester,
            name="requester",
            extra_links={"kernel1": kernel_address(1)},
        )
        drain(system)
        assert system.where_is(child_pid["pid"]) == 2
