"""Tests for the round-robin scheduler."""

from repro.kernel.ids import ProcessId
from repro.kernel.scheduler import RoundRobinScheduler


def pid(n):
    return ProcessId(0, n)


class TestRoundRobin:
    def test_fifo_order(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1))
        sched.enqueue(pid(2))
        assert sched.pick_next() == pid(1)
        sched.release_cpu(pid(1))
        assert sched.pick_next() == pid(2)

    def test_enqueue_is_idempotent(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1))
        sched.enqueue(pid(1))
        assert len(sched) == 1

    def test_running_process_not_requeued(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1))
        assert sched.pick_next() == pid(1)
        sched.enqueue(pid(1))  # still marked running
        assert len(sched) == 0
        sched.release_cpu(pid(1))
        sched.enqueue(pid(1))
        assert len(sched) == 1

    def test_remove_from_queue(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1))
        sched.enqueue(pid(2))
        sched.remove(pid(1))
        assert sched.pick_next() == pid(2)

    def test_remove_absent_is_noop(self):
        sched = RoundRobinScheduler()
        sched.remove(pid(9))

    def test_pick_from_empty_is_none(self):
        assert RoundRobinScheduler().pick_next() is None

    def test_load_counts_queue_plus_running(self):
        sched = RoundRobinScheduler()
        assert sched.load == 0
        sched.enqueue(pid(1))
        sched.enqueue(pid(2))
        assert sched.load == 2
        sched.pick_next()
        assert sched.load == 2  # one running + one queued
        sched.release_cpu(pid(1))
        assert sched.load == 1

    def test_queued_pids_in_order(self):
        sched = RoundRobinScheduler()
        for n in (3, 1, 2):
            sched.enqueue(pid(n))
        assert sched.queued_pids() == [pid(3), pid(1), pid(2)]

    def test_release_other_pid_keeps_running(self):
        sched = RoundRobinScheduler()
        sched.enqueue(pid(1))
        sched.pick_next()
        sched.release_cpu(pid(2))
        assert sched.running == pid(1)
