"""Property-based tests for kernel data structures."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.ids import ProcessAddress, ProcessId
from repro.kernel.links import Link, LinkTable
from repro.kernel.memory import MemoryImage, MemoryManager, SegmentKind

pids = st.builds(
    ProcessId,
    creating_machine=st.integers(min_value=0, max_value=7),
    local_id=st.integers(min_value=1, max_value=9),
)
machines = st.integers(min_value=0, max_value=7)


class TestLinkTableProperties:
    @given(
        targets=st.lists(st.tuples(pids, machines), max_size=30),
        victim=pids,
        new_machine=machines,
    )
    def test_retarget_all_is_precise(self, targets, victim, new_machine):
        """retarget_all changes exactly the stale links to the victim pid
        and nothing else."""
        table = LinkTable()
        for pid, machine in targets:
            table.insert(Link(ProcessAddress(pid, machine)))
        stale_before = sum(
            1
            for pid, machine in targets
            if pid == victim and machine != new_machine
        )
        others_before = [
            (lid, link.address)
            for lid, link in table.items()
            if link.target_pid != victim
        ]
        changed = table.retarget_all(victim, new_machine)
        assert changed == stale_before
        for link in table.links_to(victim):
            assert link.address.last_known_machine == new_machine
        others_after = [
            (lid, link.address)
            for lid, link in table.items()
            if link.target_pid != victim
        ]
        assert others_before == others_after

    @given(count=st.integers(min_value=0, max_value=40))
    def test_ids_unique_across_inserts_and_removals(self, count):
        table = LinkTable()
        seen = set()
        address = ProcessAddress(ProcessId(0, 1), 0)
        for i in range(count):
            link_id = table.insert(Link(address))
            assert link_id not in seen
            seen.add(link_id)
            if i % 3 == 0:
                table.remove(link_id)

    @given(targets=st.lists(st.tuples(pids, machines), max_size=30))
    def test_retarget_idempotent(self, targets):
        table = LinkTable()
        for pid, machine in targets:
            table.insert(Link(ProcessAddress(pid, machine)))
        for pid, _ in targets:
            table.retarget_all(pid, 3)
            assert table.retarget_all(pid, 3) == 0


class TestMemoryManagerProperties:
    @given(
        sizes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2_000),  # code
                st.integers(min_value=0, max_value=2_000),  # data
                st.integers(min_value=0, max_value=2_000),  # stack
            ),
            max_size=12,
        ),
    )
    def test_usage_never_exceeds_capacity(self, sizes):
        manager = MemoryManager(capacity_bytes=8_000)
        attached = []
        for index, (code, data, stack) in enumerate(sizes):
            image = MemoryImage.sized(code=code, data=data, stack=stack)
            try:
                manager.attach(index, image)
                attached.append(index)
            except Exception:
                pass
            assert manager.used_bytes <= manager.capacity_bytes
        for owner in attached:
            manager.detach(owner)
        assert manager.used_bytes == 0

    @given(
        reservations=st.lists(
            st.integers(min_value=0, max_value=5_000), max_size=10
        ),
    )
    def test_reservations_respect_capacity(self, reservations):
        manager = MemoryManager(capacity_bytes=8_000)
        granted = 0
        for index, size in enumerate(reservations):
            if manager.reserve(index, size):
                granted += size
            assert manager.used_bytes == granted
            assert manager.used_bytes <= manager.capacity_bytes

    @given(
        swaps=st.lists(st.sampled_from(list(SegmentKind)), max_size=12),
    )
    def test_swap_round_trips_preserve_totals(self, swaps):
        manager = MemoryManager(capacity_bytes=100_000)
        image = MemoryImage.sized(code=4_000, data=2_000, stack=1_000)
        manager.attach("p", image)
        total = image.total_bytes
        for kind in swaps:
            manager.swap_out("p", kind)
            assert image.total_bytes == total
            manager.swap_in("p", kind)
        assert manager.used_bytes == total
