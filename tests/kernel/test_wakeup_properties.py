"""Property tests for the batched message wakeup.

Delivery satisfies a waiting Receive inline but coalesces the CPU grant:
all wakeups within a tick share one deferred dispatch event.  Whatever
the burst pattern, each receiver must still see every sender's messages
exactly once and in the order that sender issued them.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import drain, make_bare_system
from tests.kernel.test_delivery import spawn_with_peer

BOUNDED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBatchedWakeupFifo:
    @BOUNDED
    @given(
        counts=st.lists(
            st.integers(min_value=1, max_value=8), min_size=1, max_size=5
        ),
        machines=st.integers(min_value=1, max_value=4),
    )
    def test_burst_senders_preserve_per_sender_fifo(self, counts, machines):
        """N clients blast a single waiting server; arrivals from several
        wires can land in one tick, so wakeups coalesce.  Per-sender
        sequence numbers must come out strictly in order."""
        system = make_bare_system(machines=machines)
        total = sum(counts)
        received = []

        def server(ctx):
            for _ in range(total):
                msg = yield ctx.receive()
                received.append(msg.payload)
            yield ctx.exit()

        def client(ctx, sender, n):
            for i in range(n):
                yield ctx.send(
                    ctx.bootstrap["peer"], op="n", payload=(sender, i)
                )
            yield ctx.exit()

        server_pid = system.spawn(server, machine=0)
        for sender, n in enumerate(counts):
            spawn_with_peer(
                system,
                lambda ctx,
                _s=sender,
                _n=n: client(ctx, _s, _n),
                sender % machines,
                server_pid,
                0,
            )
        drain(system)

        assert len(received) == total
        for sender, n in enumerate(counts):
            assert [i for s, i in received if s == sender] == list(range(n))

    @BOUNDED
    @given(
        n=st.integers(min_value=1, max_value=10),
        timeout=st.integers(min_value=1, max_value=2_000),
    )
    def test_receive_with_timeout_still_gets_messages_in_order(
        self, n, timeout
    ):
        """A timed Receive must be satisfied by an arriving message (not
        spuriously timed out) and still drain FIFO."""
        system = make_bare_system(machines=2)
        received = []

        def server(ctx):
            for _ in range(n):
                msg = yield ctx.receive(timeout=timeout)
                if msg is None:  # timed out: try again
                    continue
                received.append(msg.payload)
            yield ctx.exit()

        def client(ctx):
            for i in range(n):
                yield ctx.send(ctx.bootstrap["peer"], op="n", payload=i)
            yield ctx.exit()

        server_pid = system.spawn(server, machine=0)
        spawn_with_peer(system, client, 1, server_pid, 0)
        drain(system)
        # Timeouts may skip a round, so received is a prefix-preserving
        # subsequence; everything that did arrive is in order.
        assert received == sorted(received)
        assert len(set(received)) == len(received)
