"""Tests for the lossy channel and packet framing."""

import random

from repro.net.channel import Channel, FaultPlan
from repro.net.packet import PACKET_HEADER_BYTES, Packet, PacketKind
from repro.net.topology import Wire
from repro.sim.loop import EventLoop


def make_packet(size=100, seq=0):
    return Packet(
        src=0, dst=1, kind=PacketKind.DATA, seq=seq,
        payload="x", payload_bytes=size,
    )


class TestPacket:
    def test_size_includes_header(self):
        packet = make_packet(size=100)
        assert packet.size_bytes == 100 + PACKET_HEADER_BYTES

    def test_serials_unique(self):
        assert make_packet().serial != make_packet().serial


class TestPerfectChannel:
    def test_delivers_after_wire_delay(self):
        loop = EventLoop()
        seen = []
        wire = Wire(0, 1, latency=100, bandwidth=1_000)
        channel = Channel(loop, wire, deliver=seen.append)
        packet = make_packet(size=1_000 - PACKET_HEADER_BYTES)
        channel.transmit(packet)
        loop.run()
        assert seen == [packet]
        assert loop.now == 100 + 1_000  # latency + serialization

    def test_in_flight_counter(self):
        loop = EventLoop()
        wire = Wire(0, 1, latency=10, bandwidth=1_000)
        channel = Channel(loop, wire, deliver=lambda p: None)
        channel.transmit(make_packet())
        assert channel.in_flight == 1
        loop.run()
        assert channel.in_flight == 0

    def test_fault_plan_is_perfect_by_default(self):
        assert FaultPlan().is_perfect
        assert not FaultPlan(drop_probability=0.1).is_perfect


class TestFaultInjection:
    def test_full_drop_loses_everything(self):
        loop = EventLoop()
        seen, dropped = [], []
        channel = Channel(
            loop, Wire(0, 1, 10, 1_000), deliver=seen.append,
            faults=FaultPlan(drop_probability=1.0),
            rng=random.Random(0), on_drop=dropped.append,
        )
        channel.transmit(make_packet())
        loop.run()
        assert seen == []
        assert len(dropped) == 1

    def test_duplication_delivers_twice(self):
        loop = EventLoop()
        seen = []
        channel = Channel(
            loop, Wire(0, 1, 10, 1_000), deliver=seen.append,
            faults=FaultPlan(duplicate_probability=1.0),
            rng=random.Random(0),
        )
        channel.transmit(make_packet())
        loop.run()
        assert len(seen) == 2

    def test_jitter_delays_delivery(self):
        loop = EventLoop()
        seen = []
        channel = Channel(
            loop, Wire(0, 1, 10, 1_000_000), deliver=lambda p: seen.append(loop.now),
            faults=FaultPlan(max_jitter=500),
            rng=random.Random(1),
        )
        channel.transmit(make_packet(size=0))
        loop.run()
        assert len(seen) == 1
        assert 10 <= seen[0] <= 510

    def test_partial_drop_statistics(self):
        loop = EventLoop()
        seen = []
        channel = Channel(
            loop, Wire(0, 1, 1, 1_000_000), deliver=seen.append,
            faults=FaultPlan(drop_probability=0.5),
            rng=random.Random(7),
        )
        for i in range(200):
            channel.transmit(make_packet(seq=i))
        loop.run()
        assert 50 < len(seen) < 150  # roughly half survive
