"""Tests for the reliable, ordered transport.

The paper's only assumption about the network is "any message sent will
eventually be delivered" — these tests establish that guarantee under
drops, duplicates, and reordering jitter.
"""

from repro.net.channel import FaultPlan
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.loop import EventLoop
from repro.sim.rng import RandomStreams


def make_net(machines=2, faults=None, topology=None, seed=0):
    loop = EventLoop()
    topo = topology or Topology.full_mesh(machines)
    net = Network(loop, topo, rngs=RandomStreams(seed), faults=faults)
    inboxes = {m: [] for m in topo.machines}
    for m in topo.machines:
        net.register_receiver(m, lambda src, p, _m=m: inboxes[_m].append((src, p)))
    return loop, net, inboxes


class TestPerfectNetwork:
    def test_delivers_payload(self):
        loop, net, inboxes = make_net()
        net.send(0, 1, "hello", 16)
        loop.run()
        assert inboxes[1] == [(0, "hello")]

    def test_in_order_per_pair(self):
        loop, net, inboxes = make_net()
        for i in range(50):
            net.send(0, 1, i, 8)
        loop.run()
        assert [p for _, p in inboxes[1]] == list(range(50))

    def test_bidirectional(self):
        loop, net, inboxes = make_net()
        net.send(0, 1, "ping", 8)
        net.send(1, 0, "pong", 8)
        loop.run()
        assert inboxes[1] == [(1 - 1, "ping")]
        assert inboxes[0] == [(1, "pong")]

    def test_self_send_rejected(self):
        import pytest

        from repro.errors import UnknownMachineError

        loop, net, _ = make_net()
        with pytest.raises(UnknownMachineError):
            net.send(0, 0, "x", 8)

    def test_multi_hop_routing(self):
        loop, net, inboxes = make_net(topology=Topology.line(4))
        net.send(0, 3, "far", 8)
        loop.run()
        assert inboxes[3] == [(0, "far")]

    def test_quiescent_after_run(self):
        loop, net, _ = make_net()
        net.send(0, 1, "x", 8)
        assert not net.quiescent()
        loop.run()
        assert net.quiescent()

    def test_stats_count_sends_and_deliveries(self):
        loop, net, _ = make_net()
        net.send(0, 1, "x", 8, category="user")
        loop.run()
        assert net.stats.sends_by_category["user"] == 1
        assert net.stats.delivered_by_category["user"] == 1
        # one data packet + one ack
        assert net.stats.packets_sent == 2


class TestLossyNetwork:
    def test_all_messages_eventually_delivered_under_drops(self):
        loop, net, inboxes = make_net(
            faults=FaultPlan(drop_probability=0.3), seed=3,
        )
        for i in range(100):
            net.send(0, 1, i, 8)
        loop.run()
        assert [p for _, p in inboxes[1]] == list(range(100))
        assert net.stats.packets_dropped > 0
        assert net.stats.retransmissions > 0

    def test_duplicates_suppressed(self):
        loop, net, inboxes = make_net(
            faults=FaultPlan(duplicate_probability=0.5), seed=4,
        )
        for i in range(100):
            net.send(0, 1, i, 8)
        loop.run()
        assert [p for _, p in inboxes[1]] == list(range(100))
        assert net.stats.packets_duplicated > 0

    def test_order_preserved_under_jitter(self):
        loop, net, inboxes = make_net(
            faults=FaultPlan(max_jitter=5_000), seed=5,
        )
        for i in range(100):
            net.send(0, 1, i, 8)
        loop.run()
        assert [p for _, p in inboxes[1]] == list(range(100))

    def test_combined_faults(self):
        loop, net, inboxes = make_net(
            faults=FaultPlan(
                drop_probability=0.2,
                duplicate_probability=0.2,
                max_jitter=2_000,
            ),
            seed=6,
        )
        for i in range(60):
            net.send(0, 1, i, 8)
            net.send(1, 0, -i, 8)
        loop.run()
        assert [p for _, p in inboxes[1]] == list(range(60))
        assert [p for _, p in inboxes[0]] == [-i for i in range(60)]

    def test_per_wire_fault_override(self):
        loop, net, inboxes = make_net(machines=3)
        net.set_faults(FaultPlan(drop_probability=1.0), 0, 1)
        # Force the channels to exist first: the override applies to the
        # 0<->1 pair only; traffic 0->2 is unaffected.
        net.send(0, 2, "ok", 8)
        loop.run_until(loop.now + 50_000)
        assert inboxes[2] == [(0, "ok")]

    def test_global_fault_override(self):
        loop, net, inboxes = make_net(machines=2)
        net.set_faults(FaultPlan(drop_probability=0.4))
        for i in range(50):
            net.send(0, 1, i, 8)
        loop.run()
        assert [p for _, p in inboxes[1]] == list(range(50))
        assert net.stats.packets_dropped > 0
