"""Property-based tests for the reliable transport: exactly-once,
in-order delivery under arbitrary fault mixes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.channel import FaultPlan
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.loop import EventLoop
from repro.sim.rng import RandomStreams

BOUNDED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

fault_plans = st.builds(
    FaultPlan,
    drop_probability=st.floats(min_value=0.0, max_value=0.5),
    duplicate_probability=st.floats(min_value=0.0, max_value=0.5),
    max_jitter=st.integers(min_value=0, max_value=5_000),
)


class TestReliableProperties:
    @BOUNDED
    @given(
        faults=fault_plans,
        seed=st.integers(min_value=0, max_value=10**6),
        plan=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),  # src
                st.integers(min_value=0, max_value=2),  # dst
            ),
            max_size=40,
        ),
    )
    def test_exactly_once_in_order_per_pair(self, faults, seed, plan):
        loop = EventLoop()
        topo = Topology.full_mesh(3)
        net = Network(loop, topo, rngs=RandomStreams(seed), faults=faults)
        inboxes = {m: [] for m in topo.machines}
        for m in topo.machines:
            net.register_receiver(
                m, lambda src, payload, _m=m: inboxes[_m].append(payload),
            )
        sent = {}
        for src, dst in plan:
            if src == dst:
                continue
            key = (src, dst)
            index = sent.setdefault(key, [])
            index.append(len(index))
            net.send(src, dst, (key, index[-1]), 8)
        loop.run(max_events=5_000_000)

        # Every sent payload delivered exactly once, in per-pair order.
        for (src, dst), indices in sent.items():
            delivered = [
                i for key, i in inboxes[dst] if key == (src, dst)
            ]
            assert delivered == indices

    @BOUNDED
    @given(
        faults=fault_plans,
        seed=st.integers(min_value=0, max_value=10**6),
        count=st.integers(min_value=1, max_value=30),
    )
    def test_multi_hop_line_topology(self, faults, seed, count):
        loop = EventLoop()
        topo = Topology.line(4)
        net = Network(loop, topo, rngs=RandomStreams(seed), faults=faults)
        received = []
        net.register_receiver(3, lambda src, p: received.append(p))
        for m in (0, 1, 2):
            net.register_receiver(m, lambda src, p: None)
        for i in range(count):
            net.send(0, 3, i, 8)
        loop.run(max_events=5_000_000)
        assert received == list(range(count))
        assert net.quiescent()
