"""Tests for retransmission timing: backoff, cap, and recovery."""

from repro.net.channel import FaultPlan
from repro.net.network import Network
from repro.net.reliable import DEFAULT_RTO, MAX_RTO, RTO_BACKOFF
from repro.net.topology import Topology
from repro.sim.loop import EventLoop
from repro.sim.rng import RandomStreams


def make_pair(faults=None, seed=0, rto=DEFAULT_RTO):
    loop = EventLoop()
    topo = Topology.full_mesh(2)
    net = Network(loop, topo, rngs=RandomStreams(seed), faults=faults,
                  rto=rto)
    inbox = []
    net.register_receiver(1, lambda src, p: inbox.append((loop.now, p)))
    net.register_receiver(0, lambda src, p: None)
    return loop, net, inbox


class TestRetransmission:
    def test_no_retransmit_on_clean_channel(self):
        loop, net, inbox = make_pair()
        net.send(0, 1, "x", 8)
        loop.run()
        assert net.stats.retransmissions == 0

    def test_backoff_doubles_and_caps(self):
        assert RTO_BACKOFF == 2
        assert MAX_RTO == 200_000
        # Total blackout: retransmits march out with exponential spacing.
        loop, net, inbox = make_pair(
            faults=FaultPlan(drop_probability=1.0), rto=1_000,
        )
        net.send(0, 1, "x", 8)
        loop.run_until(70_000)
        # 1ms, 2ms, 4ms, ... doubling: about log2(70) ~ 6-7 attempts,
        # far fewer than 70 fixed-interval attempts.
        assert 4 <= net.stats.retransmissions <= 9

    def test_delivery_after_blackout_lifts(self):
        loop, net, inbox = make_pair(
            faults=FaultPlan(drop_probability=1.0), rto=1_000,
        )
        net.send(0, 1, "precious", 8)
        loop.run_until(20_000)
        assert inbox == []
        net.set_faults(FaultPlan())  # network heals
        loop.run()
        assert [p for _, p in inbox] == ["precious"]
        assert net.quiescent()

    def test_ack_loss_causes_duplicate_suppression(self):
        # Drop half the packets; every payload still arrives exactly once
        # even though data packets are retransmitted after ack losses.
        loop, net, inbox = make_pair(
            faults=FaultPlan(drop_probability=0.5), seed=9, rto=1_000,
        )
        for i in range(30):
            net.send(0, 1, i, 8)
        loop.run()
        assert [p for _, p in inbox] == list(range(30))

    def test_retransmit_toward_crashed_machine_we_execute(self):
        # Regression: when the sender is also the executor for a crashed
        # destination, the network hands retransmitted packets straight
        # back to the sender's own transport, and the resulting ack pops
        # the unacked dict while _on_timer is walking it.  This used to
        # raise "dictionary changed size during iteration"; now the
        # stream must settle to quiescence.
        loop, net, inbox = make_pair(
            faults=FaultPlan(drop_probability=1.0), rto=1_000,
        )
        for i in range(5):
            net.send(0, 1, i, 8)
        loop.run_until(2_500)  # at least one retransmission pass
        assert inbox == []
        net.crash_machine(1, executor=0)
        net.set_faults(FaultPlan())  # network heals
        loop.run()
        # The executor absorbed machine 1's streams: every payload is
        # delivered (to its receiver) exactly once and nothing is left
        # in flight or awaiting an ack.
        assert net.quiescent()
        deliveries = net.stats.delivered_by_category.get("user", 0)
        assert deliveries == 5

    def test_custom_rto_honoured(self):
        loop, net, inbox = make_pair(
            faults=FaultPlan(drop_probability=1.0), rto=50_000,
        )
        net.send(0, 1, "x", 8)
        loop.run_until(49_000)
        assert net.stats.retransmissions == 0
        loop.run_until(101_000)
        assert net.stats.retransmissions >= 1
