"""Tests for network accounting and wire occupancy."""

from repro.net.channel import Channel
from repro.net.packet import PACKET_HEADER_BYTES, Packet, PacketKind
from repro.net.stats import NetworkStats
from repro.net.topology import Wire
from repro.sim.loop import EventLoop


def make_packet(size=100, seq=0, category="user"):
    return Packet(
        src=0, dst=1, kind=PacketKind.DATA, seq=seq,
        payload=None, payload_bytes=size, category=category,
    )


class TestNetworkStats:
    def test_note_send_accumulates(self):
        stats = NetworkStats()
        stats.note_send(make_packet(100, category="admin"))
        stats.note_send(make_packet(50, category="admin"))
        assert stats.packets_sent == 2
        assert stats.payload_bytes_sent == 150
        assert stats.bytes_sent == 150 + 2 * PACKET_HEADER_BYTES
        assert stats.sends_by_category["admin"] == 2
        assert stats.payload_bytes_by_category["admin"] == 150

    def test_retransmits_not_double_counted_per_category(self):
        stats = NetworkStats()
        packet = make_packet(100, category="user")
        stats.note_send(packet)
        stats.note_send(packet, retransmit=True)
        assert stats.packets_sent == 2
        assert stats.retransmissions == 1
        assert stats.sends_by_category["user"] == 1

    def test_snapshot_shapes(self):
        stats = NetworkStats()
        stats.note_send(make_packet())
        stats.note_delivery(make_packet())
        snapshot = stats.snapshot()
        assert snapshot["packets_sent"] == 1
        assert snapshot["packets_delivered"] == 1
        categories = stats.category_snapshot()
        assert categories["user"] == (1, 100)


class TestWireOccupancy:
    def test_back_to_back_packets_serialise(self):
        """The wire is serial: N equal packets take N serialization
        periods, which is what makes bulk state transfer scale (E1)."""
        loop = EventLoop()
        arrivals = []
        wire = Wire(0, 1, latency=100, bandwidth=1_000)  # 1B/us
        channel = Channel(loop, wire, deliver=lambda p: arrivals.append(loop.now))
        size = 1_000 - PACKET_HEADER_BYTES  # 1ms serialization each
        for seq in range(3):
            channel.transmit(make_packet(size, seq=seq))
        loop.run()
        assert arrivals == [1_100, 2_100, 3_100]

    def test_idle_wire_does_not_accumulate_delay(self):
        loop = EventLoop()
        arrivals = []
        wire = Wire(0, 1, latency=100, bandwidth=1_000)
        channel = Channel(loop, wire, deliver=lambda p: arrivals.append(loop.now))
        size = 1_000 - PACKET_HEADER_BYTES
        channel.transmit(make_packet(size, seq=0))
        loop.run()
        assert arrivals == [1_100]
        # Much later, a second packet starts on a free wire: it pays one
        # transfer time from its own send instant, with no queueing debt.
        loop.call_after(
            10_000, lambda: channel.transmit(make_packet(size, seq=1)),
        )
        loop.run()
        sent_at = 1_100 + 10_000
        assert arrivals[1] == sent_at + 1_000 + 100

    def test_topology_shapes_reachable_in_system(self):
        for shape in ("mesh", "line", "ring", "star"):
            from tests.conftest import make_bare_system

            system = make_bare_system(machines=4, topology=shape)
            got = []

            def receiver(ctx):
                msg = yield ctx.receive()
                got.append(msg.op)
                yield ctx.exit()

            from repro.kernel.ids import ProcessAddress
            from repro.kernel.messages import MessageKind

            pid = system.spawn(receiver, machine=3)
            system.kernel(0).send_to_process(
                ProcessAddress(pid, 3), f"via-{shape}", {},
                kind=MessageKind.USER,
            )
            system.run(max_events=100_000)
            assert got == [f"via-{shape}"], shape
