"""Tests for machine topology and routing."""

import pytest

from repro.errors import NoRouteError, UnknownMachineError
from repro.net.topology import Topology, Wire


class TestWire:
    def test_transfer_time_includes_serialization(self):
        wire = Wire(0, 1, latency=100, bandwidth=1_000)  # 1000 B/ms
        assert wire.transfer_time(0) == 100
        assert wire.transfer_time(1_000) == 100 + 1_000

    def test_transfer_time_scales_with_size(self):
        wire = Wire(0, 1, latency=0, bandwidth=2_000)
        assert wire.transfer_time(2_000) == 1_000


class TestBuilders:
    def test_full_mesh_connects_all_pairs(self):
        topo = Topology.full_mesh(4)
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert b in topo.neighbors(a)

    def test_line_connects_adjacent_only(self):
        topo = Topology.line(4)
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(1) == [0, 2]
        assert topo.neighbors(3) == [2]

    def test_ring_closes_the_loop(self):
        topo = Topology.ring(4)
        assert 0 in topo.neighbors(3)

    def test_star_hub_and_spokes(self):
        topo = Topology.star(5)
        assert topo.neighbors(0) == [1, 2, 3, 4]
        assert topo.neighbors(3) == [0]

    def test_machines_sorted(self):
        assert Topology.full_mesh(3).machines == [0, 1, 2]


class TestRouting:
    def test_next_hop_direct(self):
        topo = Topology.full_mesh(3)
        assert topo.next_hop(0, 2) == 2

    def test_next_hop_on_line(self):
        topo = Topology.line(4)
        assert topo.next_hop(0, 3) == 1
        assert topo.next_hop(3, 0) == 2

    def test_path_on_line(self):
        topo = Topology.line(4)
        assert topo.path(0, 3) == [0, 1, 2, 3]

    def test_path_to_self(self):
        topo = Topology.line(3)
        assert topo.path(1, 1) == [1]

    def test_shortest_path_prefers_low_latency(self):
        topo = Topology()
        topo.connect(0, 1, latency=10)
        topo.connect(1, 2, latency=10)
        topo.connect(0, 2, latency=100)
        assert topo.path(0, 2) == [0, 1, 2]

    def test_unknown_machine_rejected(self):
        topo = Topology.line(2)
        with pytest.raises(UnknownMachineError):
            topo.next_hop(0, 9)
        with pytest.raises(UnknownMachineError):
            topo.next_hop(9, 0)

    def test_no_route_between_islands(self):
        topo = Topology()
        topo.add_machine(0)
        topo.add_machine(1)
        with pytest.raises(NoRouteError):
            topo.next_hop(0, 1)

    def test_no_wire_error(self):
        topo = Topology.line(3)
        with pytest.raises(NoRouteError):
            topo.wire(0, 2)

    def test_routes_recomputed_after_change(self):
        topo = Topology.line(3)
        assert topo.next_hop(0, 2) == 1
        topo.connect(0, 2, latency=1)
        assert topo.next_hop(0, 2) == 2


class TestRouteCacheLru:
    def test_cache_bounded_at_limit(self):
        topo = Topology.line(5)
        topo._route_cache_limit = 2
        for src in range(4):
            topo.next_hop(src, 4)
        assert len(topo._routes) == 2
        assert list(topo._routes) == [2, 3]

    def test_recent_hit_survives_eviction(self):
        topo = Topology.line(4)
        topo._route_cache_limit = 2
        topo.next_hop(0, 3)
        topo.next_hop(1, 3)
        # Touch 0 again so 1 is now the least recently used source.
        topo.next_hop(0, 2)
        topo.next_hop(2, 3)
        assert list(topo._routes) == [0, 2]

    def test_evicted_source_recomputed_correctly(self):
        topo = Topology.line(4)
        topo._route_cache_limit = 1
        assert topo.next_hop(0, 3) == 1
        assert topo.next_hop(3, 0) == 2  # evicts source 0
        assert 0 not in topo._routes
        # Source 0 routes identically after recomputation.
        assert topo.next_hop(0, 3) == 1
        assert topo.path(0, 3) == [0, 1, 2, 3]

    def test_wire_change_still_invalidates_all(self):
        topo = Topology.line(3)
        topo._route_cache_limit = 2
        topo.next_hop(0, 2)
        topo.next_hop(1, 2)
        topo.connect(0, 2, latency=1)
        assert not topo._routes
        assert topo.next_hop(0, 2) == 2

    def test_default_limit_adapts_to_machine_count(self):
        from repro.net.topology import DEFAULT_ROUTE_CACHE_LIMIT

        assert DEFAULT_ROUTE_CACHE_LIMIT == 512
        assert Topology()._route_cache_limit is None
        # Every machine on a multi-hop path becomes a routing source
        # when it forwards, so the adaptive bound must fit one table
        # per machine — no eviction however many sources route.
        topo = Topology.ring(8)
        for src in range(8):
            topo.next_hop(src, (src + 3) % 8)
        assert len(topo._routes) == 8

    def test_explicit_limit_still_binds(self):
        topo = Topology.ring(8)
        topo._route_cache_limit = 4
        for src in range(8):
            topo.next_hop(src, (src + 3) % 8)
        assert len(topo._routes) == 4

    def test_constructor_limit_validated(self):
        with pytest.raises(ValueError):
            Topology(route_cache_limit=0)
        assert Topology(route_cache_limit=3)._route_cache_limit == 3
