"""Property tests for on-demand per-source routing.

The eager all-pairs precomputation was replaced with per-source Dijkstra
computed on first use and cached until a wire changes.  These tests pit
the new path against a reference copy of the retired all-pairs
computation on random sparse topologies: every next-hop (and every
no-route outcome) must be identical, including after the cache has been
invalidated by adding or re-weighting wires.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoRouteError
from repro.net.topology import Topology


def reference_routes(
    topo: Topology,
) -> dict[tuple[int, int], int]:
    """The retired eager algorithm, verbatim: Dijkstra from every source
    over adjacency lists built in wire-insertion order.  Serves as the
    tie-breaking oracle the on-demand path must reproduce exactly."""
    adjacency: dict[int, list[tuple[int, int]]] = {
        m: [] for m in topo._machines
    }
    for (a, b), wire in topo._wires.items():
        adjacency[a].append((b, wire.latency))
    routes: dict[tuple[int, int], int] = {}
    for source in topo._machines:
        dist = {source: 0}
        first: dict[int, int] = {}
        heap = [(0, source)]
        while heap:
            d, here = heapq.heappop(heap)
            if d > dist.get(here, d):
                continue
            for b, latency in adjacency[here]:
                nd = d + latency
                if nd < dist.get(b, nd + 1):
                    dist[b] = nd
                    first[b] = first.get(here, b) if here != source else b
                    heapq.heappush(heap, (nd, b))
        for dst, hop in first.items():
            routes[(source, dst)] = hop
    return routes


#: (a, b, latency) triples; self-loops are filtered at build time and
#: repeated pairs exercise the reconnect/re-weight path.
edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=1, max_value=500),
    ),
    min_size=1,
    max_size=30,
)


def build(n: int, edge_list) -> Topology:
    topo = Topology()
    for m in range(n):
        topo.add_machine(m)  # isolated machines exercise no-route paths
    for a, b, latency in edge_list:
        if a != b:
            topo.connect(a, b, latency=latency)
    return topo


def assert_matches_reference(topo: Topology) -> None:
    expected = reference_routes(topo)
    for src in topo.machines:
        for dst in topo.machines:
            if src == dst:
                assert topo.next_hop(src, dst) == dst
            elif (src, dst) in expected:
                assert topo.next_hop(src, dst) == expected[(src, dst)]
            else:
                with pytest.raises(NoRouteError):
                    topo.next_hop(src, dst)


class TestRoutingEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(n=st.integers(min_value=2, max_value=12), edge_list=edge_lists)
    def test_next_hop_matches_all_pairs_reference(self, n, edge_list):
        topo = build(n, edge_list)
        assert_matches_reference(topo)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        first=edge_lists,
        second=edge_lists,
    )
    def test_wire_changes_invalidate_cached_routes(self, n, first, second):
        topo = build(n, first)
        assert_matches_reference(topo)  # warms every per-source cache
        for a, b, latency in second:
            # New wires extend the graph; repeated pairs re-weight an
            # existing wire in place.  Both must flush stale routes.
            if a != b:
                topo.connect(a, b, latency=latency)
        assert_matches_reference(topo)


class TestSparseBuilders:
    """The cluster-scale shapes route identically to the reference too,
    and have the degrees/machine counts their docstrings promise."""

    def test_torus_matches_reference(self):
        topo = Topology.torus2d(4, 5)
        assert len(topo.machines) == 20
        assert all(len(topo.neighbors(m)) == 4 for m in topo.machines)
        assert_matches_reference(topo)

    def test_degenerate_torus_rows(self):
        ring = Topology.torus2d(1, 6)  # single row degenerates to a ring
        assert sorted(ring.neighbors(0)) == [1, 5]
        assert_matches_reference(ring)
        pair = Topology.torus2d(2, 2)  # no wrap wires at length two
        assert all(len(pair.neighbors(m)) == 2 for m in pair.machines)
        assert_matches_reference(pair)

    def test_hypercube_matches_reference(self):
        topo = Topology.hypercube(4)
        assert len(topo.machines) == 16
        assert all(len(topo.neighbors(m)) == 4 for m in topo.machines)
        # Shortest hop count between opposite corners is the dimension.
        assert len(topo.path(0, 15)) == 5
        assert_matches_reference(topo)

    def test_ring_of_cliques_matches_reference(self):
        topo = Topology.ring_of_cliques(4, 3)
        assert len(topo.machines) == 12
        # Gateways carry the clique mesh plus two ring wires.
        assert len(topo.neighbors(0)) == 4
        assert len(topo.neighbors(1)) == 2
        assert_matches_reference(topo)

    def test_two_cliques_share_one_bridge(self):
        topo = Topology.ring_of_cliques(2, 3)
        assert sorted(topo.neighbors(0)) == [1, 2, 3]
        assert_matches_reference(topo)
