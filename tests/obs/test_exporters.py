"""Tests for the Chrome trace and metrics JSON exporters."""

import json

from repro.obs.exporters import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    chrome_trace,
    metrics_snapshot_dict,
    span_to_trace_events,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span
from repro.sim.trace import TraceRecord


def make_span():
    span = Span(pid="p0.1", start=100, source=0, dest=2)
    span.add(100, "FREEZE", step=1)
    span.add(110, "REQUEST", step=2)
    span.add(200, "RESTART", step=8)
    span.add(210, "RESTART_ACK")
    span.end = 210
    span.status = "ok"
    return span


class TestSpanToTraceEvents:
    def test_complete_event_plus_instants(self):
        events = span_to_trace_events(make_span())
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 1
        assert len(instants) == 4

    def test_complete_event_carries_span_summary(self):
        (complete,) = [
            e for e in span_to_trace_events(make_span())
            if e["ph"] == "X"
        ]
        assert complete["name"] == "migrate p0.1 0->2"
        assert complete["ts"] == 100
        assert complete["dur"] == 110
        assert complete["args"]["status"] == "ok"
        assert complete["args"]["steps"] == [1, 2, 8]

    def test_instants_carry_step_fields(self):
        instants = [
            e for e in span_to_trace_events(make_span())
            if e["ph"] == "i"
        ]
        assert [e["name"] for e in instants] == [
            "FREEZE", "REQUEST", "RESTART", "RESTART_ACK",
        ]
        assert instants[0]["args"] == {"step": 1}
        assert all(e["s"] == "t" for e in instants)

    def test_open_span_uses_last_event_as_end(self):
        span = Span(pid="p", start=10)
        span.add(10, "FREEZE", step=1)
        span.add(25, "REQUEST", step=2)
        (complete,) = [
            e for e in span_to_trace_events(span) if e["ph"] == "X"
        ]
        assert complete["dur"] == 15

    def test_empty_span_has_zero_duration(self):
        (complete,) = [
            e for e in span_to_trace_events(Span(pid="p", start=10))
            if e["ph"] == "X"
        ]
        assert complete["dur"] == 0


class TestChromeTrace:
    def test_document_shape(self):
        document = chrome_trace([make_span()])
        assert document["otherData"]["schema"] == TRACE_SCHEMA
        assert document["displayTimeUnit"] == "ms"
        assert isinstance(document["traceEvents"], list)

    def test_metadata_merged_into_other_data(self):
        document = chrome_trace([], metadata={"machines": 4})
        assert document["otherData"]["machines"] == 4

    def test_spans_share_tracks_by_pid(self):
        a, b = make_span(), make_span()
        document = chrome_trace([a, b])
        tids = {
            e["tid"] for e in document["traceEvents"] if e["ph"] == "X"
        }
        assert len(tids) == 1

    def test_thread_name_metadata_emitted(self):
        document = chrome_trace([make_span()])
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["args"]["name"] == "p0.1"

    def test_raw_records_become_instants(self):
        record = TraceRecord(42, "net", "drop", {"wire": (0, 1)})
        document = chrome_trace([], records=[record])
        (instant,) = [
            e for e in document["traceEvents"] if e["ph"] == "i"
        ]
        assert instant["name"] == "net.drop"
        assert instant["ts"] == 42
        # Non-JSON-primitive fields are stringified, not dropped.
        assert instant["args"]["wire"] == "(0, 1)"

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json", [make_span()],
            metadata={"pid": "p0.1"},
        )
        document = json.loads(path.read_text())
        assert document["otherData"]["schema"] == TRACE_SCHEMA
        names = {e["name"] for e in document["traceEvents"]}
        assert "migrate p0.1 0->2" in names


class TestMetricsSnapshotDict:
    def test_wraps_snapshot_with_schema(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        document = metrics_snapshot_dict(registry.snapshot(), now=500)
        assert document["schema"] == METRICS_SCHEMA
        assert document["now_us"] == 500
        assert document["counters"] == {"c": 3}

    def test_extra_fields_merged(self):
        document = metrics_snapshot_dict(
            MetricsRegistry().snapshot(), extra={"report": {"x": 1}},
        )
        assert document["report"] == {"x": 1}
        assert "now_us" not in document

    def test_document_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c", machine=0).inc()
        registry.histogram("h", buckets=(4, 16)).observe(3)
        document = metrics_snapshot_dict(registry.snapshot(), now=1)
        parsed = json.loads(json.dumps(document))
        assert parsed["histograms"]["h"]["count"] == 1
