"""Property tests for the latency histogram math.

Three contracts the latency pipeline rests on:

- **bracketing** — a percentile read off the log-spaced buckets is
  within one bucket's relative width (a factor of ``2 ** 0.25``) of the
  true sample percentile, never below it;
- **mergeability** — ``a.merge(b)`` is indistinguishable from having
  recorded the concatenated stream (latencies are integer microseconds,
  so float summation is exact and the snapshots compare equal);
- **conservation** — observations never vanish across snapshot/reset
  cycles: interval snapshots sum back to the one-shot histogram.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    LATENCY_BUCKETS_US,
    Histogram,
    LatencyHistogram,
)

#: adjacent latency bucket bounds differ by exactly this factor
BUCKET_RATIO = 2 ** 0.25

#: integer-microsecond latencies inside the bucket grid's range
latencies = st.lists(
    st.integers(min_value=1, max_value=2**26 - 1),
    min_size=1,
    max_size=200,
)

QUANTILES = (0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0)

BOUNDED = settings(max_examples=200, deadline=None)


def fresh() -> LatencyHistogram:
    return LatencyHistogram("latency", ())


def true_percentile(samples: list[int], q: float) -> int:
    """The exact rank-rule percentile: ceil(q * n)-th smallest sample."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestBracketing:
    @BOUNDED
    @given(samples=latencies, q=st.sampled_from(QUANTILES))
    def test_percentile_brackets_true_sample_percentile(self, samples, q):
        histogram = fresh()
        for value in samples:
            histogram.observe(value)
        snap = histogram.freeze()
        truth = true_percentile(samples, q)
        estimate = snap.percentile(q)
        assert truth <= estimate <= truth * BUCKET_RATIO

    @BOUNDED
    @given(samples=latencies)
    def test_extremes_are_exact(self, samples):
        histogram = fresh()
        for value in samples:
            histogram.observe(value)
        snap = histogram.freeze()
        assert snap.min == min(samples)
        assert snap.max == max(samples)
        assert snap.percentile(1.0) <= snap.max
        assert snap.percentile(0.0) >= snap.min

    def test_empty_histogram_has_no_percentiles(self):
        snap = fresh().freeze()
        assert snap.percentile(0.5) is None
        assert snap.p50 is None and snap.p95 is None and snap.p99 is None

    def test_out_of_range_quantile_rejected(self):
        snap = fresh().freeze()
        with pytest.raises(ValueError):
            snap.percentile(1.5)
        with pytest.raises(ValueError):
            snap.percentile(-0.1)

    def test_observation_beyond_last_bound_degrades_to_max(self):
        histogram = fresh()
        histogram.observe(2**30)  # above the 2**26 grid
        snap = histogram.freeze()
        assert snap.percentile(0.5) == 2**30

    def test_bucket_grid_is_log_spaced_and_increasing(self):
        for lo, hi in zip(LATENCY_BUCKETS_US, LATENCY_BUCKETS_US[1:]):
            assert hi > lo
            assert hi / lo == pytest.approx(BUCKET_RATIO)


class TestMerge:
    @BOUNDED
    @given(first=latencies, second=latencies)
    def test_merge_equals_concatenated_stream(self, first, second):
        left = fresh()
        for value in first:
            left.observe(value)
        right = fresh()
        for value in second:
            right.observe(value)
        concat = fresh()
        for value in first + second:
            concat.observe(value)
        left.merge(right)
        assert left.freeze() == concat.freeze()

    @BOUNDED
    @given(samples=latencies)
    def test_merge_into_empty_is_identity(self, samples):
        target = fresh()
        source = fresh()
        for value in samples:
            source.observe(value)
        target.merge(source)
        assert target.freeze() == source.freeze()

    def test_merge_rejects_mismatched_bounds(self):
        other = Histogram("h", (), buckets=(1, 2, 3))
        with pytest.raises(ValueError):
            fresh().merge(other)


class TestConservation:
    @BOUNDED
    @given(first=latencies, second=latencies)
    def test_counts_conserved_across_snapshot_reset(self, first, second):
        histogram = fresh()
        for value in first:
            histogram.observe(value)
        interval_one = histogram.reset()
        for value in second:
            histogram.observe(value)
        interval_two = histogram.reset()

        concat = fresh()
        for value in first + second:
            concat.observe(value)
        whole = concat.freeze()

        assert interval_one.count + interval_two.count == whole.count
        assert interval_one.sum + interval_two.sum == whole.sum
        summed = tuple(
            a + b
            for a, b in zip(
                interval_one.bucket_counts, interval_two.bucket_counts
            )
        )
        assert summed == whole.bucket_counts
        # and the histogram itself is empty again
        assert histogram.freeze().count == 0

    def test_reset_returns_the_pre_reset_view(self):
        histogram = fresh()
        histogram.observe(10)
        snap = histogram.reset()
        assert snap.count == 1
        assert snap.min == 10
        assert histogram.count == 0
        assert histogram.min is None
