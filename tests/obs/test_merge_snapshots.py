"""Tests for cross-registry snapshot merging (sharded execution)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    merge_histogram_snapshots,
    merge_snapshots,
    thaw_histogram,
)

values = st.lists(
    st.floats(min_value=0.01, max_value=10_000.0,
              allow_nan=False, allow_infinity=False),
    max_size=40,
)


class TestThawHistogram:
    @given(observations=values)
    def test_freeze_thaw_freeze_is_identity(self, observations):
        histogram = Histogram("h", (), buckets=(1.0, 10.0, 100.0, 1000.0))
        for value in observations:
            histogram.observe(value)
        snapshot = histogram.freeze()
        assert thaw_histogram("h", (), snapshot).freeze() == snapshot

    def test_overflow_observations_survive(self):
        histogram = Histogram("h", (), buckets=(1.0, 2.0))
        histogram.observe(50.0)  # beyond the last bound
        snapshot = histogram.freeze()
        thawed = thaw_histogram("h", (), snapshot)
        assert thawed.count == 1
        assert thawed.freeze() == snapshot


class TestMergeHistogramSnapshots:
    @given(streams=st.lists(values, min_size=1, max_size=4))
    def test_merge_equals_one_histogram_of_everything(self, streams):
        bounds = (1.0, 10.0, 100.0, 1000.0)
        parts = []
        union = Histogram("h", (), buckets=bounds)
        for stream in streams:
            part = Histogram("h", (), buckets=bounds)
            for value in stream:
                part.observe(value)
                union.observe(value)
            parts.append(part.freeze())
        merged = merge_histogram_snapshots(parts)
        expected = union.freeze()
        # sum is compared approximately: float addition order differs
        # between per-part and sequential accumulation (in the engine
        # observations are integer microseconds, which sum exactly).
        assert merged.sum == pytest.approx(expected.sum)
        assert merged == type(expected)(
            count=expected.count, sum=merged.sum, min=expected.min,
            max=expected.max, bucket_bounds=expected.bucket_bounds,
            bucket_counts=expected.bucket_counts,
        )

    def test_zero_snapshots_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            merge_histogram_snapshots([])

    def test_mismatched_bounds_rejected(self):
        a = Histogram("h", (), buckets=(1.0, 2.0)).freeze()
        b = Histogram("h", (), buckets=(1.0, 3.0)).freeze()
        with pytest.raises(ValueError, match="bounds differ"):
            merge_histogram_snapshots([a, b])


class TestMergeSnapshots:
    def registry(self, machine, sends, latencies):
        registry = MetricsRegistry()
        registry.counter("net.sends", machine=machine).inc(sends)
        registry.counter("net.sends").inc(sends * 2)
        registry.gauge("queue.depth", machine=machine).set(machine + 1)
        histogram = registry.latency_histogram("latency_us")
        for value in latencies:
            histogram.observe(value)
        return registry

    def test_counters_sum_per_series(self):
        merged = merge_snapshots([
            self.registry(0, 5, []).snapshot(),
            self.registry(1, 7, []).snapshot(),
        ])
        assert merged.get("net.sends", machine=0) == 5
        assert merged.get("net.sends", machine=1) == 7
        assert merged.get("net.sends") == 24  # unlabelled series summed
        assert merged.total("net.sends") == 36

    def test_same_series_from_two_shards_adds_up(self):
        merged = merge_snapshots([
            self.registry(0, 5, []).snapshot(),
            self.registry(0, 3, []).snapshot(),
        ])
        assert merged.get("net.sends", machine=0) == 8

    def test_gauges_and_histograms_merge(self):
        merged = merge_snapshots([
            self.registry(0, 1, [10.0, 20.0]).snapshot(),
            self.registry(1, 1, [30.0]).snapshot(),
        ])
        assert merged.get("queue.depth", machine=1) == 2
        histogram = merged.histogram("latency_us")
        assert histogram.count == 3
        assert histogram.min == 10.0 and histogram.max == 30.0

    def test_merged_percentiles_match_single_registry(self):
        latencies = [float(v) for v in range(1, 101)]
        single = self.registry(0, 1, latencies).snapshot()
        merged = merge_snapshots([
            self.registry(0, 1, latencies[:50]).snapshot(),
            self.registry(0, 1, latencies[50:]).snapshot(),
        ])
        assert (
            merged.histogram("latency_us")
            == single.histogram("latency_us")
        )

    def test_empty_input_gives_empty_snapshot(self):
        merged = merge_snapshots([])
        assert merged.counters == {} and merged.histograms == {}
