"""Tests for the metrics registry: instruments, labels, snapshots."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_US,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    render_key,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot().total("c") == 5

    def test_inc_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_total_rejects_decrease(self):
        counter = MetricsRegistry().counter("c")
        counter.set_total(10)
        with pytest.raises(ValueError):
            counter.set_total(9)

    def test_set_total_idempotent_at_same_value(self):
        counter = MetricsRegistry().counter("c")
        counter.set_total(10)
        counter.set_total(10)
        assert counter.value == 10

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", machine=1) is registry.counter(
            "c", machine=1
        )
        assert registry.counter("c", machine=1) is not registry.counter(
            "c", machine=2
        )

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", machine=1, op="x")
        b = registry.counter("c", op="x", machine=1)
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_gauge_can_go_negative(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.dec(3)
        assert gauge.value == -3


class TestHistogram:
    def test_tracks_count_sum_min_max(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (5, 1, 9):
            histogram.observe(value)
        snap = histogram.freeze()
        assert snap.count == 3
        assert snap.sum == 15
        assert snap.min == 1
        assert snap.max == 9
        assert snap.mean == 5

    def test_empty_histogram(self):
        snap = MetricsRegistry().histogram("h").freeze()
        assert snap.count == 0
        assert snap.mean is None
        assert snap.min is None and snap.max is None

    def test_cumulative_buckets(self):
        histogram = Histogram("h", (), buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            histogram.observe(value)
        snap = histogram.freeze()
        # <=10: 1, <=100: 2, <=1000: 3; 5000 only in the implicit +Inf.
        assert snap.bucket_counts == (1, 2, 3)
        assert snap.count == 4

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram("h", (), buckets=(10, 100))
        histogram.observe(10)
        assert histogram.freeze().bucket_counts == (1, 1)

    def test_bounds_are_sorted_and_deduplicated(self):
        histogram = Histogram("h", (), buckets=(100, 10, 100))
        assert histogram.bounds == (10, 100)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=())

    def test_default_buckets_cover_wide_range(self):
        assert DEFAULT_BUCKETS[0] == 4
        assert DEFAULT_BUCKETS[-1] >= 1_000_000

    def test_custom_buckets_only_apply_on_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=(1, 2))
        again = registry.histogram("h")
        assert again is first
        assert again.bounds == (1, 2)


class TestLatencyHistogram:
    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.latency_histogram("workload.request_latency_us")
        again = registry.latency_histogram("workload.request_latency_us")
        assert again is first
        assert isinstance(first, LatencyHistogram)
        assert first.bounds == LATENCY_BUCKETS_US

    def test_shares_namespace_with_plain_histograms(self):
        registry = MetricsRegistry()
        plain = registry.histogram("h", buckets=(1, 2))
        assert registry.latency_histogram("h") is plain

    def test_disabled_registry_hands_out_null(self):
        registry = MetricsRegistry(enabled=False)
        instrument = registry.latency_histogram("h")
        instrument.observe(5)
        instrument.merge(LatencyHistogram("other", ()))
        assert registry.snapshot().histogram("h") is None

    def test_percentiles_surface_in_to_dict(self):
        registry = MetricsRegistry()
        registry.latency_histogram("h").observe(100)
        document = registry.snapshot().to_dict()
        rendered = document["histograms"]["h"]
        assert rendered["count"] == 1
        assert rendered["p50"] == rendered["p95"] == rendered["p99"]
        assert 100 <= rendered["p50"] <= 100 * 2**0.25


class TestSnapshot:
    def test_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("c", machine=0).inc(2)
        registry.counter("c", machine=1).inc(3)
        assert registry.snapshot().total("c") == 5

    def test_get_single_series(self):
        registry = MetricsRegistry()
        registry.counter("c", machine=0).inc(2)
        snap = registry.snapshot()
        assert snap.get("c", machine=0) == 2
        assert snap.get("c", machine=9) == 0
        assert snap.get("absent") == 0

    def test_by_label(self):
        registry = MetricsRegistry()
        registry.counter("c", machine=0, op="a").inc(1)
        registry.counter("c", machine=0, op="b").inc(2)
        registry.counter("c", machine=1, op="a").inc(4)
        snap = registry.snapshot()
        assert snap.by_label("c", "machine") == {0: 3, 1: 4}
        assert snap.by_label("c", "op") == {"a": 5, "b": 2}

    def test_histogram_lookup(self):
        registry = MetricsRegistry()
        registry.histogram("h", machine=2).observe(7)
        snap = registry.snapshot()
        assert snap.histogram("h", machine=2).count == 1
        assert snap.histogram("h", machine=3) is None
        assert snap.histogram("absent") is None

    def test_snapshot_is_frozen_copy(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        snap = registry.snapshot()
        counter.inc(100)
        assert snap.total("c") == 1

    def test_to_dict_renders_flat_keys(self):
        registry = MetricsRegistry()
        registry.counter("kernel.forwards", machine=0).inc(3)
        registry.gauge("sim.now_us").set(42)
        registry.histogram("h", buckets=(10,)).observe(5)
        document = registry.snapshot().to_dict()
        assert document["counters"] == {"kernel.forwards{machine=0}": 3}
        assert document["gauges"] == {"sim.now_us": 42}
        assert document["histograms"]["h"]["count"] == 1
        assert document["histograms"]["h"]["buckets"] == {"10": 1}

    def test_render_key(self):
        assert render_key("n", ()) == "n"
        assert render_key("n", (("a", 1), ("b", "x"))) == "n{a=1,b=x}"


class TestCollectors:
    def test_collector_runs_on_snapshot(self):
        registry = MetricsRegistry()
        external = {"count": 7}

        def publish(reg):
            reg.counter("mirrored").set_total(external["count"])

        registry.register_collector(publish)
        assert registry.snapshot().total("mirrored") == 7
        external["count"] = 9
        assert registry.snapshot().total("mirrored") == 9

    def test_multiple_collectors_all_run(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda reg: reg.counter("a").set_total(1)
        )
        registry.register_collector(
            lambda reg: reg.counter("b").set_total(2)
        )
        snap = registry.snapshot()
        assert snap.total("a") == 1 and snap.total("b") == 2


class TestHistogramDelta:
    """delta_since: the windowed view an SLO balancer samples."""

    def test_window_contains_only_new_observations(self):
        histogram = LatencyHistogram("lat", ())
        for value in (100, 200, 400):
            histogram.observe(value)
        first = histogram.freeze()
        for value in (800, 1_600):
            histogram.observe(value)
        window = histogram.freeze().delta_since(first)
        assert window.count == 2
        assert window.sum == 800 + 1_600
        # The window's percentile reads off only the new observations.
        assert window.percentile(0.5) >= 800
        # An unchanged histogram yields an empty window.
        empty = histogram.freeze().delta_since(histogram.freeze())
        assert empty.count == 0
        assert empty.percentile(0.99) is None

    def test_windows_partition_the_lifetime_counts(self):
        histogram = LatencyHistogram("lat", ())
        snapshots = [histogram.freeze()]
        for batch in ((10, 20), (30,), (40, 50, 60)):
            for value in batch:
                histogram.observe(value)
            snapshots.append(histogram.freeze())
        windows = [
            later.delta_since(earlier)
            for earlier, later in zip(snapshots, snapshots[1:])
        ]
        assert [w.count for w in windows] == [2, 1, 3]
        assert sum(w.sum for w in windows) == histogram.freeze().sum

    def test_min_max_keep_the_lifetime_envelope(self):
        histogram = LatencyHistogram("lat", ())
        histogram.observe(1)
        first = histogram.freeze()
        histogram.observe(1_000_000)
        window = histogram.freeze().delta_since(first)
        assert window.min == 1
        assert window.max == 1_000_000

    def test_mismatched_buckets_rejected(self):
        small = Histogram("a", (), buckets=(1, 2)).freeze()
        large = Histogram("b", (), buckets=(1, 2, 3)).freeze()
        with pytest.raises(ValueError):
            large.delta_since(small)

    def test_newer_snapshot_required(self):
        histogram = LatencyHistogram("lat", ())
        old = histogram.freeze()
        histogram.observe(5)
        new = histogram.freeze()
        with pytest.raises(ValueError):
            old.delta_since(new)


class TestHistogramByLabel:
    def test_series_keyed_by_one_label(self):
        registry = MetricsRegistry()
        registry.latency_histogram("lat", domain="east").observe(10)
        registry.latency_histogram("lat", domain="west").observe(20)
        registry.latency_histogram("lat").observe(30)  # unlabelled
        by_domain = registry.snapshot().histogram_by_label("lat", "domain")
        assert set(by_domain) == {"east", "west"}
        assert by_domain["east"].count == 1
        assert by_domain["west"].sum == 20

    def test_absent_metric_yields_empty_mapping(self):
        registry = MetricsRegistry()
        assert registry.snapshot().histogram_by_label("nope", "x") == {}
