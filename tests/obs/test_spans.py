"""Tests for migration span assembly from tracer records."""

from repro.obs.spans import MIGRATION_STEPS, SpanCollector
from repro.sim.trace import Tracer
from tests.conftest import drain, make_bare_system


def make_tracer():
    clock = {"now": 0}
    tracer = Tracer(lambda: clock["now"])
    return tracer, clock


def feed_migration(tracer, clock, pid="p0.1", refuse=False):
    """Replay the trace records of one migration by hand."""
    clock["now"] = 100
    tracer.record("migrate", "step1-freeze", pid=pid, machine=0, dest=2)
    clock["now"] = 110
    tracer.record("migrate", "step2-request", pid=pid, dest=2)
    if refuse:
        clock["now"] = 120
        tracer.record("migrate", "refused", pid=pid, reason="memory")
        return
    for now, event in (
        (120, "accepted"), (130, "step3-allocate"), (140, "step4-state"),
        (150, "step4-state"), (160, "step5-program"),
        (170, "transfer-complete"), (180, "step6-forward-pending"),
        (190, "step7-cleanup"), (200, "step8-restart"), (210, "done"),
    ):
        clock["now"] = now
        tracer.record("migrate", event, pid=pid)


class TestSpanAssembly:
    def test_full_migration_becomes_one_ok_span(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        feed_migration(tracer, clock)
        (span,) = collector.all_spans()
        assert span.status == "ok"
        assert span.pid == "p0.1"
        assert span.source == 0 and span.dest == 2
        assert span.start == 100 and span.end == 210
        assert span.duration == 110

    def test_span_contains_all_eight_steps_in_order(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        feed_migration(tracer, clock)
        (span,) = collector.all_spans()
        assert span.steps() == [1, 2, 3, 4, 4, 5, 6, 7, 8]
        times = span.event_times()
        assert times == sorted(times)

    def test_span_name(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        feed_migration(tracer, clock)
        (span,) = collector.all_spans()
        assert span.name == "migrate p0.1 0->2"

    def test_refused_migration_closes_span_as_refused(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        feed_migration(tracer, clock, refuse=True)
        (span,) = collector.all_spans()
        assert span.status == "refused"
        assert span.end == 120
        assert span.steps() == [1, 2]

    def test_open_span_is_in_flight(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        clock["now"] = 5
        tracer.record("migrate", "step1-freeze", pid="p0.1",
                      machine=0, dest=1)
        (span,) = collector.all_spans()
        assert span.status == "in-flight"
        assert span.end is None and span.duration is None
        assert len(collector) == 1
        assert collector.finished == []

    def test_partial_trace_ignored(self):
        # Collector attached mid-migration: steps without a step1 open
        # no span instead of producing a broken one.
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        tracer.record("migrate", "step5-program", pid="p0.1")
        tracer.record("migrate", "done", pid="p0.1")
        assert collector.all_spans() == []

    def test_non_step_migrate_events_ignored(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        tracer.record("migrate", "not-here", pid="p0.1")
        tracer.record("migrate", "already-moving", pid="p0.1")
        assert collector.all_spans() == []

    def test_concurrent_migrations_tracked_separately(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        tracer.record("migrate", "step1-freeze", pid="a", machine=0,
                      dest=1)
        tracer.record("migrate", "step1-freeze", pid="b", machine=2,
                      dest=3)
        tracer.record("migrate", "done", pid="b")
        spans = {s.pid: s for s in collector.all_spans()}
        assert spans["a"].status == "in-flight"
        assert spans["b"].status == "ok"

    def test_sequential_migrations_of_same_pid(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        feed_migration(tracer, clock)
        clock["now"] = 1000
        tracer.record("migrate", "step1-freeze", pid="p0.1", machine=2,
                      dest=3)
        clock["now"] = 1010
        tracer.record("migrate", "done", pid="p0.1")
        spans = collector.spans_for("p0.1")
        assert len(spans) == 2
        assert [s.source for s in spans] == [0, 2]

    def test_every_mapped_event_has_a_name(self):
        for event, (name, step) in MIGRATION_STEPS.items():
            assert name
            assert step is None or 1 <= step <= 8


class TestChildEvents:
    def test_forward_hits_attach_to_latest_span(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        feed_migration(tracer, clock)
        clock["now"] = 300
        tracer.record("forward", "hit", pid="p0.1", machine=0)
        (span,) = collector.all_spans()
        children = span.child_events()
        assert [e.name for e in children] == ["FORWARD_HOP"]
        assert children[0].time == 300

    def test_link_updates_attach_by_target(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        feed_migration(tracer, clock)
        tracer.record("linkupd", "sent", target="p0.1", to=3)
        tracer.record("linkupd", "applied", target="p0.1", machine=3)
        (span,) = collector.all_spans()
        assert [e.name for e in span.child_events()] == [
            "LINK_UPDATE_SENT", "LINK_UPDATE_APPLIED",
        ]

    def test_child_events_for_unknown_pid_ignored(self):
        tracer, clock = make_tracer()
        collector = SpanCollector(tracer)
        tracer.record("forward", "hit", pid="nobody")
        tracer.record("linkupd", "sent", target="nobody")
        assert collector.all_spans() == []


class TestAgainstRealSystem:
    def test_system_span_matches_migration_ticket(self):
        system = make_bare_system()

        def parked(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 2)
        drain(system)
        assert ticket.success
        (span,) = system.spans.all_spans()
        assert span.status == "ok"
        assert span.pid == str(pid)
        assert span.source == 0 and span.dest == 2
        assert span.steps() == [1, 2, 3, 4, 4, 5, 6, 7, 8]
        assert span.duration == ticket.record.duration

    def test_refusal_on_real_system(self):
        # The destination declines (destination autonomy, paper §3.2) —
        # the span records the refusal.
        system = make_bare_system()
        system.kernel(1).config.accept_migration = lambda p, s: False

        def parked(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 1)
        drain(system)
        assert not ticket.success
        (span,) = system.spans.spans_for(str(pid))
        assert span.status == "refused"
        assert span.end is not None
