"""Tests for destination autonomy: fallback placement and domains (§3.2)."""

import pytest

from repro.policy.domains import (
    Domain,
    DomainRegistry,
    refuse_foreign,
    size_capped,
)
from repro.policy.placement import migrate_with_fallback
from tests.conftest import drain, make_bare_system


def parked(ctx):
    while True:
        yield ctx.receive()


def refuse(pid, size):
    return False


class TestFallbackMigration:
    def test_first_choice_accepts(self):
        system = make_bare_system(machines=4)
        pid = system.spawn(parked, machine=0)
        outcome = migrate_with_fallback(system, pid, [1, 2, 3])
        drain(system)
        assert outcome.done and outcome.succeeded
        assert outcome.placed_on == 1
        assert outcome.refusals == []
        assert system.where_is(pid) == 1

    def test_rebuffed_source_looks_elsewhere(self):
        system = make_bare_system(machines=4)
        system.kernel(1).config.accept_migration = refuse
        system.kernel(2).config.accept_migration = refuse
        pid = system.spawn(parked, machine=0)
        outcome = migrate_with_fallback(system, pid, [1, 2, 3])
        drain(system)
        assert outcome.succeeded and outcome.placed_on == 3
        assert [m for m, _ in outcome.refusals] == [1, 2]
        assert len(outcome.records) == 3
        assert system.where_is(pid) == 3

    def test_everyone_refuses_leaves_process_home(self):
        system = make_bare_system(machines=3)
        system.kernel(1).config.accept_migration = refuse
        system.kernel(2).config.accept_migration = refuse
        pid = system.spawn(parked, machine=0)
        outcome = migrate_with_fallback(system, pid, [1, 2])
        drain(system)
        assert outcome.done and not outcome.succeeded
        assert system.where_is(pid) == 0
        # The process still works after every refusal.
        state = system.process_state(pid)
        assert state.status.value in ("ready", "waiting")

    def test_preference_for_current_machine_is_immediate(self):
        system = make_bare_system(machines=3)
        pid = system.spawn(parked, machine=0)
        outcome = migrate_with_fallback(system, pid, [0, 1])
        assert outcome.done and outcome.placed_on == 0

    def test_on_done_callback(self):
        system = make_bare_system(machines=3)
        pid = system.spawn(parked, machine=0)
        seen = []
        migrate_with_fallback(system, pid, [2], on_done=seen.append)
        drain(system)
        assert len(seen) == 1 and seen[0].placed_on == 2


class TestDomains:
    def build(self, admission):
        system = make_bare_system(machines=4)
        registry = DomainRegistry()
        registry.add(Domain("research", {0, 1}))
        registry.add(Domain("production", {2, 3}, admission=admission))
        registry.install(system)
        return system, registry

    def test_intra_domain_always_admitted(self):
        system, registry = self.build(refuse_foreign)
        pid = system.spawn(parked, machine=2)
        ticket = system.migrate(pid, 3)
        drain(system)
        assert ticket.success
        assert registry.domain_of(3).admitted == 1

    def test_suspicious_domain_refuses_foreign_process(self):
        system, registry = self.build(refuse_foreign)
        pid = system.spawn(parked, machine=0)
        ticket = system.migrate(pid, 2)
        drain(system)
        assert ticket.success is False
        assert system.where_is(pid) == 0
        assert registry.domain_of(2).refused == 1

    def test_size_capped_admission(self):
        from repro.kernel.memory import MemoryImage

        system, registry = self.build(size_capped(10_000))
        small = system.kernel(0).spawn(
            parked, name="small",
            memory=MemoryImage.sized(code=1_000, data=1_000, stack=500),
        )
        big = system.kernel(0).spawn(
            parked, name="big",
            memory=MemoryImage.sized(code=50_000, data=50_000, stack=500),
        )
        small_ticket = system.migrate(small, 2)
        drain(system)
        big_ticket = system.migrate(big, 2)
        drain(system)
        assert small_ticket.success
        assert big_ticket.success is False

    def test_leaving_a_domain_is_not_restricted(self):
        system, registry = self.build(refuse_foreign)
        pid = system.spawn(parked, machine=2)
        # production -> research: research accepts everyone.
        ticket = system.migrate(pid, 0)
        drain(system)
        assert ticket.success

    def test_overlapping_domains_rejected(self):
        registry = DomainRegistry()
        registry.add(Domain("a", {0, 1}))
        with pytest.raises(ValueError):
            registry.add(Domain("b", {1, 2}))

    def test_domain_of(self):
        registry = DomainRegistry()
        d = registry.add(Domain("a", {0}))
        assert registry.domain_of(0) is d
        assert registry.domain_of(5) is None


class TestForwardingSweeper:
    def test_sweep_collects_old_entries(self):
        from repro.policy.gc import ForwardingSweeper

        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        assert system.total_forwarding_entries() == 1
        sweeper = ForwardingSweeper(system, max_age=100_000)
        # Entry is young: nothing collected.
        assert sweeper.sweep_now() == 0
        system.run(until=system.loop.now + 200_000)
        assert sweeper.sweep_now() == 1
        assert system.total_forwarding_entries() == 0
        assert sweeper.stats.collected == 1

    def test_periodic_sweeper(self):
        from repro.policy.gc import ForwardingSweeper

        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        sweeper = ForwardingSweeper(
            system, interval=50_000, max_age=100_000,
        )
        sweeper.install()
        system.run(until=400_000)
        sweeper.stop()
        assert system.total_forwarding_entries() == 0
        assert sweeper.stats.sweeps >= 2

    def test_message_after_sweep_falls_back_to_undeliverable(self):
        from repro.kernel.messages import MessageKind
        from repro.kernel.ids import ProcessAddress
        from repro.policy.gc import ForwardingSweeper

        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        system.run(until=system.loop.now + 200_000)
        ForwardingSweeper(system, max_age=100_000).sweep_now()
        system.kernel(2).send_to_process(
            ProcessAddress(pid, 0), "stale", {}, kind=MessageKind.USER,
        )
        drain(system)
        assert system.kernel(0).stats.undeliverable == 1
