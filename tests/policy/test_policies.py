"""Tests for migration decision policies (§3.1 / §7 continuing work)."""

from repro.policy.affinity import AffinityPolicy, _parse_pid
from repro.policy.load_balancer import ThresholdLoadBalancer
from repro.policy.metrics import (
    CommunicationMatrix,
    imbalance,
    machine_loads,
    memory_demand,
    migratable_processes,
)
from repro.workloads.compute import compute_bound
from repro.workloads.pingpong import make_pair_programs
from tests.conftest import drain, make_bare_system, make_system


class TestMetrics:
    def test_machine_loads_reflect_run_queues(self):
        system = make_bare_system(machines=2)
        for _ in range(3):
            system.spawn(
                lambda ctx: compute_bound(ctx, total=50_000), machine=0,
            )
        system.run(until=1_000)
        loads = machine_loads(system)
        assert loads[0] >= 2
        assert loads[1] == 0

    def test_imbalance(self):
        assert imbalance({0: 5, 1: 1}) == 4
        assert imbalance({}) == 0
        assert imbalance({0: 2, 1: 2}) == 0

    def test_memory_demand(self):
        system = make_bare_system(machines=2)
        system.spawn(lambda ctx: iter(()), machine=0)
        demand = memory_demand(system)
        assert demand[0] > 0 and demand[1] == 0

    def test_migratable_excludes_named_servers(self):
        system = make_bare_system(machines=2)
        system.spawn(lambda ctx: compute_bound(ctx, total=10**6),
                     machine=0, name="keep-me")
        system.spawn(lambda ctx: compute_bound(ctx, total=10**6),
                     machine=0, name="pinned")
        system.run(until=1_000)
        movable = migratable_processes(
            system, 0, exclude_names=frozenset({"pinned"}),
        )
        names = {system.process_state(p).name for p in movable}
        assert names == {"keep-me"}

    def test_communication_matrix_counts_pairs(self):
        system = make_bare_system(machines=2)
        matrix = CommunicationMatrix()
        system.tracer.subscribe(matrix.observe)

        def server(ctx):
            while True:
                msg = yield ctx.receive()
                if msg.delivered_link_ids:
                    yield ctx.send(msg.delivered_link_ids[0], op="r")

        def client(ctx, server_pid):
            for _ in range(5):
                reply_link = yield ctx.create_link()
                yield ctx.send(ctx.bootstrap["peer"], op="q",
                              links=(reply_link,))
                yield ctx.receive()
                yield ctx.destroy_link(reply_link)
            yield ctx.exit()

        from repro.kernel.ids import ProcessAddress

        server_pid = system.spawn(server, machine=0)
        client_pid = system.kernel(1).spawn(
            lambda ctx: client(ctx, server_pid),
            extra_links={"peer": ProcessAddress(server_pid, 0)},
        )
        drain(system)
        assert matrix.traffic_between(str(client_pid), str(server_pid)) == 10
        ((pair, count),) = matrix.heaviest_pairs(1)
        assert count == 5


class TestThresholdLoadBalancer:
    def make_imbalanced(self, jobs=6, total=200_000):
        system = make_bare_system(machines=2)
        for _ in range(jobs):
            system.spawn(
                lambda ctx: compute_bound(ctx, total=total), machine=0,
            )
        return system

    def test_balancer_moves_work_to_idle_machine(self):
        system = self.make_imbalanced()
        balancer = ThresholdLoadBalancer(
            system, interval=5_000, threshold=2, sustain=1,
        )
        balancer.install()
        system.run(until=400_000)
        balancer.stop()
        drain(system)
        assert balancer.stats.migrations_started >= 1
        assert balancer.stats.migrations_succeeded >= 1
        # Work genuinely ran on machine 1 afterwards.
        assert system.kernel(1).stats.processes_exited >= 1

    def test_balancer_idle_when_balanced(self):
        system = make_bare_system(machines=2)
        for machine in (0, 1):
            system.spawn(
                lambda ctx: compute_bound(ctx, total=50_000),
                machine=machine,
            )
        balancer = ThresholdLoadBalancer(
            system, interval=5_000, threshold=2, sustain=1,
        )
        balancer.install()
        system.run(until=100_000)
        balancer.stop()
        drain(system)
        assert balancer.stats.migrations_started == 0

    def test_sustain_requires_consecutive_imbalance(self):
        system = self.make_imbalanced(jobs=4, total=30_000)
        balancer = ThresholdLoadBalancer(
            system, interval=5_000, threshold=2, sustain=100,
        )
        balancer.install()
        system.run(until=150_000)
        balancer.stop()
        drain(system)
        assert balancer.stats.migrations_started == 0
        assert balancer.stats.imbalanced_samples > 0

    def test_cooldown_limits_repeat_moves_of_same_pid(self):
        system = make_bare_system(machines=2)
        system.spawn(
            lambda ctx: compute_bound(ctx, total=500_000), machine=0,
            name="only-job",
        )
        # Threshold 1 with a single job: without cooldown it would bounce.
        balancer = ThresholdLoadBalancer(
            system, interval=5_000, threshold=1, sustain=1,
            cooldown=10**9,
        )
        balancer.install()
        system.run(until=300_000)
        balancer.stop()
        drain(system)
        assert balancer.stats.migrations_started <= 1

    def test_stop_prevents_further_samples(self):
        system = self.make_imbalanced()
        balancer = ThresholdLoadBalancer(system, interval=5_000)
        balancer.install()
        balancer.stop()
        system.run(until=50_000)
        assert balancer.stats.samples <= 1


class TestAffinityPolicy:
    def test_parse_pid_round_trip(self):
        from repro.kernel.ids import ProcessId

        assert _parse_pid("p2.5") == ProcessId(2, 5)
        assert _parse_pid("kernel[2]") is None
        assert _parse_pid("px.y") is None

    def test_chatty_pair_colocated(self, board):
        system = make_system()
        leader, follower = make_pair_programs(
            board, rounds=200, key="aff",
        )
        system.spawn(leader, machine=2, name="leader")
        system.spawn(follower, machine=3, name="follower")
        policy = AffinityPolicy(
            system, interval=20_000, message_threshold=10,
        )
        policy.install()
        system.run(until=600_000)
        policy.stop()
        drain(system)
        assert policy.stats.migrations_started >= 1
        leader_rec = board.only("aff-leader")
        follower_rec = board.only("aff-follower")
        assert leader_rec["machine"] == follower_rec["machine"]
