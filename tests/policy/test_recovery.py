"""Tests for fail-stop crash recovery (§1, §4)."""

import pytest

from repro.errors import KernelError
from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind
from repro.kernel.ops import OP_UNDELIVERABLE
from repro.policy.recovery import CrashRecoveryManager
from tests.conftest import drain, make_bare_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestCrashRecovery:
    def test_protected_compute_finishes_on_executor(self):
        system = make_bare_system()
        finished = {}

        def cruncher(ctx):
            yield ctx.compute(40_000)
            finished["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(cruncher, machine=0)
        manager = CrashRecoveryManager(system)
        manager.protect(pid)
        system.loop.call_at(10_000, lambda: manager.crash(0, 1))
        drain(system)
        assert finished["machine"] == 1

    def test_protected_waiter_receives_on_executor(self):
        system = make_bare_system()
        got = []

        def waiter(ctx):
            msg = yield ctx.receive()
            got.append((msg.op, ctx.machine))
            yield ctx.exit()

        pid = system.spawn(waiter, machine=0)
        drain(system)
        manager = CrashRecoveryManager(system)
        manager.protect(pid)
        report = manager.crash(0, 2)
        assert report.recovered == [pid]
        # Stale address still names the dead machine; the network
        # redirect carries it to the executor, which hosts the process.
        system.kernel(1).send_to_process(
            ProcessAddress(pid, 0), "hello", {}, kind=MessageKind.USER,
        )
        drain(system)
        assert got == [("hello", 2)]

    def test_unprotected_process_is_a_casualty(self):
        system = make_bare_system()
        notices = []

        def sender(ctx):
            yield ctx.sleep(10_000)
            yield ctx.send(ctx.bootstrap["victim"], op="too-late")
            msg = yield ctx.receive(timeout=500_000)
            notices.append(msg.op if msg else None)
            yield ctx.exit()

        victim = system.spawn(parked, machine=0)
        system.kernel(1).spawn(
            sender, name="sender",
            extra_links={"victim": ProcessAddress(victim, 0)},
        )
        manager = CrashRecoveryManager(system)  # victim NOT protected
        system.loop.call_at(5_000, lambda: manager.crash(0, 2))
        drain(system)
        assert notices == [OP_UNDELIVERABLE]
        assert manager.reports[0].casualties == [victim]

    def test_forwarding_addresses_recovered_like_processes(self):
        """A probe through a chain whose middle machine crashed still
        reaches the process: the executor answers for the dead hop."""
        system = make_bare_system(machines=4)
        got = []

        def receiver(ctx):
            msg = yield ctx.receive()
            got.append((msg.op, msg.forward_count, ctx.machine))
            yield ctx.exit()

        pid = system.spawn(receiver, machine=0)
        system.migrate(pid, 1)
        drain(system)
        system.migrate(pid, 2)
        drain(system)
        # Machine 1 (holding the 1->2 forwarding address) crashes.
        manager = CrashRecoveryManager(system)
        report = manager.crash(1, 3)
        assert report.forwarding_recovered == 1
        # Probe with the *original* address: 0 forwards to 1; machine 3
        # executes 1's forwarding table and forwards on to 2.
        system.kernel(0).send_to_process(
            ProcessAddress(pid, 0), "chase", {}, kind=MessageKind.USER,
        )
        drain(system)
        assert got == [("chase", 2, 2)]

    def test_migration_toward_crashed_machine_aborts_cleanly(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        drain(system)
        ticket = system.migrate(pid, 1)  # heads for the doomed machine
        manager = CrashRecoveryManager(system)
        manager.crash(1, 2)
        drain(system)
        assert ticket.done and ticket.success is False
        assert ticket.record.refusal_reason == "destination crashed"
        assert system.where_is(pid) == 0
        # Still alive and serviceable.
        got = []

        def poke():
            system.kernel(2).send_to_process(
                ProcessAddress(pid, 0), "alive?", {},
                kind=MessageKind.USER,
            )

        poke()
        drain(system)
        assert system.process_state(pid).accounting.messages_received == 1

    def test_sleeping_process_wakes_on_executor(self):
        system = make_bare_system()
        woke = {}

        def sleeper(ctx):
            yield ctx.sleep(50_000)
            woke["machine"] = ctx.machine
            yield ctx.exit()

        pid = system.spawn(sleeper, machine=0)
        manager = CrashRecoveryManager(system)
        manager.protect(pid)
        system.loop.call_at(10_000, lambda: manager.crash(0, 1))
        drain(system)
        assert woke["machine"] == 1

    def test_protect_all(self):
        system = make_bare_system()
        pids = [system.spawn(parked, machine=0) for _ in range(3)]
        manager = CrashRecoveryManager(system)
        manager.protect_all(0)
        report = manager.crash(0, 1)
        assert sorted(report.recovered, key=str) == sorted(pids, key=str)
        assert report.casualties == []

    def test_double_crash_rejected(self):
        system = make_bare_system()
        manager = CrashRecoveryManager(system)
        manager.crash(0, 1)
        with pytest.raises(KernelError):
            manager.crash(0, 2)
        with pytest.raises(KernelError):
            manager.crash(2, 0)  # dead executor

    def test_self_executor_rejected(self):
        system = make_bare_system()
        manager = CrashRecoveryManager(system)
        with pytest.raises(KernelError):
            manager.crash(0, 0)

    def test_network_settles_after_crash(self):
        """Messages in flight toward the dead machine are acked by the
        executor; nothing retransmits forever."""
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        manager = CrashRecoveryManager(system)
        manager.protect(pid)
        # Fire a burst, crash mid-flight.
        for i in range(10):
            system.kernel(1).send_to_process(
                ProcessAddress(pid, 0), "n", i, kind=MessageKind.USER,
            )
        system.loop.call_at(50, lambda: manager.crash(0, 2))
        drain(system)
        assert system.network.quiescent()
        state = system.process_state(pid)
        # The parked receiver consumed every message on the executor.
        assert state.accounting.messages_received == 10


class TestSourceCrashDuringOutboundMigration:
    def test_early_crash_cancels_and_recovers_at_source_snapshot(self):
        """The source dies right after step 2: the destination cancels
        its reservation and the protected frozen state is recovered on
        the executor."""
        system = make_bare_system(machines=4, latency=5_000)
        pid = system.spawn(parked, machine=0)
        drain(system)
        manager = CrashRecoveryManager(system)
        manager.protect(pid)
        system.kernel(0).migration.start(pid, 1)
        # Crash before any data chunks can arrive (wires are slow).
        system.loop.call_at(12_000, lambda: manager.crash(0, 3))
        drain(system)
        assert system.where_is(pid) == 3
        assert system.kernel(1).migration.in_progress == 0
        # The destination's reservation was released.
        assert system.kernel(1).memory.used_bytes == 0
        got = []
        state = system.process_state(pid)
        system.kernel(2).send_to_process(
            ProcessAddress(pid, 0), "post-crash", {},
            kind=MessageKind.USER,
        )
        drain(system)
        assert state.accounting.messages_received == 1

    def test_late_crash_completes_move_at_destination(self):
        """The source dies after the state is fully installed at the
        destination but before cleanup-complete arrives: the destination
        finishes the migration in place."""
        system = make_bare_system(machines=4)
        pid = system.spawn(parked, machine=0)
        drain(system)

        manager = CrashRecoveryManager(system)
        manager.protect(pid)

        crashed = {"done": False}

        # Crash exactly at step 7: state installed at the destination,
        # the cleanup-complete message not yet delivered.
        def watch(record):
            if (
                not crashed["done"]
                and record.category == "migrate"
                and record.event == "step7-cleanup"
            ):
                crashed["done"] = True
                # Source executed step 7 but its cleanup-complete message
                # is still unsent/unacked; kill it right now.
                system.loop.call_soon(lambda: manager.crash(0, 3))

        system.tracer.subscribe(watch)
        system.kernel(0).migration.start(pid, 1)
        drain(system)
        assert crashed["done"]
        # The process lives exactly once, at the destination.
        hosts = [
            k.machine for k in system.kernels if pid in k.processes
        ]
        assert hosts == [1]
        from repro.kernel.process_state import ProcessStatus

        assert system.process_state(pid).status is not (
            ProcessStatus.IN_MIGRATION
        )
