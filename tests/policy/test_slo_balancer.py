"""Tests for the latency-aware (SLO) balancer mode.

The decision state machine (:class:`SloTrigger`) is pure, so its
hysteresis guarantees — no firing without a sustained breach, no two
firings closer than the cooldown, hence no migration storm when p99
oscillates around the SLO — are property-tested directly over arbitrary
p99 sequences.  The integration tests then run the full loop: open-loop
overload on co-located hot services, windowed p99 read off the domain
histogram via ``delta_since``, one migration that spreads the pair.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.policy.load_balancer import (
    DomainLoadBalancer,
    SloPolicy,
    SloTrigger,
)
from repro.workloads.closed_loop import (
    ClientPool,
    LoadShape,
    OpenLoopConfig,
)
from repro.workloads.pingpong import echo_server
from tests.conftest import drain, make_system

BOUNDED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSloPolicyValidation:
    def test_rejects_bad_settings(self):
        with pytest.raises(ValueError):
            SloPolicy(p99_slo_us=0).validate()
        with pytest.raises(ValueError):
            SloPolicy(p99_slo_us=1_000, sustain=0).validate()
        with pytest.raises(ValueError):
            SloPolicy(p99_slo_us=1_000, cooldown=-1).validate()
        with pytest.raises(ValueError):
            SloPolicy(p99_slo_us=1_000, clear_factor=0.0).validate()
        with pytest.raises(ValueError):
            SloPolicy(p99_slo_us=1_000, clear_factor=1.1).validate()
        with pytest.raises(ValueError):
            SloPolicy(p99_slo_us=1_000, min_window_count=0).validate()

    def test_trigger_validates_on_construction(self):
        with pytest.raises(ValueError):
            SloTrigger(SloPolicy(p99_slo_us=-5))


class TestSloTrigger:
    def policy(self, **overrides):
        defaults = dict(p99_slo_us=10_000, sustain=2, cooldown=100_000,
                        clear_factor=0.8, min_window_count=4)
        defaults.update(overrides)
        return SloPolicy(**defaults)

    def test_single_breach_does_not_fire(self):
        trigger = SloTrigger(self.policy())
        assert trigger.observe(20_000, 50, now=0) is False

    def test_sustained_breach_fires_once(self):
        trigger = SloTrigger(self.policy())
        assert trigger.observe(20_000, 50, now=0) is False
        assert trigger.observe(20_000, 50, now=10_000) is True
        # Streak resets after firing; the next breach starts over and
        # the cooldown gags it anyway.
        assert trigger.observe(20_000, 50, now=20_000) is False

    def test_cooldown_blocks_refire(self):
        trigger = SloTrigger(self.policy(sustain=1))
        assert trigger.observe(20_000, 50, now=0) is True
        assert trigger.observe(20_000, 50, now=99_999) is False
        assert trigger.observe(20_000, 50, now=100_000) is True

    def test_clear_band_keeps_streak_alive(self):
        """p99 dipping below the SLO but above clear_factor*SLO does not
        reset the streak — the hysteresis band."""
        trigger = SloTrigger(self.policy(sustain=2))
        assert trigger.observe(20_000, 50, now=0) is False
        # 9_000 < slo but > 0.8 * slo: streak survives.
        assert trigger.observe(9_000, 50, now=10_000) is False
        assert trigger.observe(20_000, 50, now=20_000) is True

    def test_clean_window_resets_streak(self):
        trigger = SloTrigger(self.policy(sustain=2))
        assert trigger.observe(20_000, 50, now=0) is False
        # Below the clear band: full reset.
        assert trigger.observe(7_000, 50, now=10_000) is False
        assert trigger.observe(20_000, 50, now=20_000) is False

    def test_thin_window_is_ignored_and_resets(self):
        trigger = SloTrigger(self.policy(min_window_count=10))
        assert trigger.observe(50_000, 3, now=0) is False
        assert trigger.observe(50_000, 3, now=10_000) is False
        # An idle window also clears a pending streak.
        trigger2 = SloTrigger(self.policy(sustain=2))
        trigger2.observe(20_000, 50, now=0)
        trigger2.observe(None, 0, now=10_000)
        assert trigger2.observe(20_000, 50, now=20_000) is False

    @BOUNDED
    @given(
        p99s=st.lists(
            st.one_of(
                st.none(),
                st.floats(min_value=1.0, max_value=40_000.0,
                          allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        ),
        interval=st.sampled_from([5_000, 20_000]),
        cooldown=st.sampled_from([0, 60_000, 200_000]),
        sustain=st.integers(min_value=1, max_value=4),
    )
    def test_no_migration_storm_for_any_p99_sequence(
        self, p99s, interval, cooldown, sustain
    ):
        """However p99 oscillates around the SLO, firings stay at least
        one cooldown apart and a window needs *sustain* breaches — the
        no-storm guarantee the e13 burst leans on."""
        policy = SloPolicy(p99_slo_us=10_000, sustain=sustain,
                           cooldown=cooldown, min_window_count=1)
        trigger = SloTrigger(policy)
        fired_at = []
        for step, p99 in enumerate(p99s):
            now = step * interval
            if trigger.observe(p99, 0 if p99 is None else 50, now):
                fired_at.append(now)
        for earlier, later in zip(fired_at, fired_at[1:]):
            assert later - earlier >= cooldown
        if cooldown:
            elapsed = (len(p99s) - 1) * interval
            assert len(fired_at) <= 1 + elapsed // cooldown
        breached = sum(
            1 for p in p99s if p is not None and p > policy.p99_slo_us
        )
        assert len(fired_at) <= breached // sustain

    @BOUNDED
    @given(
        p99s=st.lists(
            st.floats(min_value=1.0, max_value=10_000.0, allow_nan=False),
            min_size=1, max_size=60,
        )
    )
    def test_never_fires_below_the_slo(self, p99s):
        trigger = SloTrigger(SloPolicy(p99_slo_us=10_000,
                                       min_window_count=1))
        assert not any(
            trigger.observe(p99, 50, now=i * 10_000)
            for i, p99 in enumerate(p99s)
        )


def run_hot_pair_scenario(seed=0, slo=None, threshold=3, compute=500):
    """Two hot echo services co-located on machine 3, each under single-
    machine capacity alone but over it together once the burst hits; an
    SLO (or queue-depth) domain balancer watches the 4-machine domain.

    Clients live on machines 0-2, so the overload queues in the servers'
    *mailboxes*: machine 3's run queue holds just the two servers and
    the e11 queue-depth threshold (spread >= 3) never trips — the
    blindness the latency-aware mode exists to fix.
    """
    system = make_system(machines=4, seed=seed)
    for name in ("svc-0", "svc-1"):
        system.spawn(
            lambda ctx, _n=name: echo_server(
                ctx, service_name=_n, compute_per_request=compute
            ),
            machine=3, name=name,
        )
    pool = ClientPool(
        system,
        OpenLoopConfig(
            clients=24,
            mean_interarrival_us=20_000,
            duration=400_000,
            deadline_us=10_000,
            drain_grace_us=150_000,
            shape=LoadShape(kind="burst", burst_start=120_000,
                            burst_end=280_000, burst_factor=3.0,
                            hot_services=2, hot_share=1.0),
        ),
        services=("svc-0", "svc-1"),
        domains={"svc-0": "all", "svc-1": "all"},
        machines=(0, 1, 2),
        key="hot",
    )
    pool.install()
    balancer = DomainLoadBalancer(
        system.domain_view([0, 1, 2, 3]),
        domain="all",
        interval=25_000,
        threshold=threshold,
        sustain=2,
        cooldown=100_000,
        victim_strategy="hungriest",
        slo=slo,
    )
    balancer.install()
    system.loop.call_at(450_000, balancer.stop)
    drain(system, max_events=10_000_000)
    return system, pool, balancer


class TestSloBalancerIntegration:
    def test_slo_balancer_spreads_the_hot_pair(self):
        slo = SloPolicy(p99_slo_us=10_000, sustain=2, cooldown=150_000,
                        min_window_count=5)
        system, pool, balancer = run_hot_pair_scenario(slo=slo)
        assert balancer.stats.slo_breach_samples >= 2
        assert balancer.stats.migrations_started >= 1
        assert balancer.stats.migrations_succeeded >= 1
        # The first move came off the overloaded machine, SLO-traced.
        assert balancer.stats.moves[0][1] == 3
        assert len(balancer.stats.move_times) == len(balancer.stats.moves)
        records = [r for r in system.tracer if r.event == "slo_balance"]
        assert records and records[0].fields["slo"] == 10_000
        assert records[0].time == balancer.stats.move_times[0]
        assert records[0].fields["p99"] > 10_000
        # The services now sit on different machines.
        machines = {
            system.where_is(pid)
            for pid in (
                next(p for k in system.kernels
                     for p, s in k.processes.items() if s.name == "svc-0"),
                next(p for k in system.kernels
                     for p, s in k.processes.items() if s.name == "svc-1"),
            )
        }
        assert len(machines) == 2

    def test_cooldown_bounds_total_moves(self):
        """An SLO set below even the healthy tail fires as fast as the
        trigger allows — and the cooldown still caps the move count."""
        slo = SloPolicy(p99_slo_us=1_000, sustain=1, cooldown=120_000,
                        min_window_count=1)
        _, _, balancer = run_hot_pair_scenario(slo=slo)
        assert balancer.stats.migrations_started >= 1
        # The balancer stops at 450_000: at most 1 + elapsed/cooldown.
        assert balancer.stats.migrations_started <= 1 + 450_000 // 120_000

    def test_queue_depth_balancer_misses_mailbox_overload(self):
        """The comparison e13 quantifies: the burst queues in the
        servers' mailboxes while machine 3's run queue holds just the
        two servers, so the e11 queue-depth balancer never sees a
        spread worth acting on and the tail is left to rot."""
        system, pool, balancer = run_hot_pair_scenario(slo=None,
                                                       threshold=3)
        assert balancer.stats.migrations_started == 0
        histogram = system.metrics.snapshot().histogram(
            "workload.request_latency_us"
        )
        # ...and the users felt it: the tail is far past the 10ms SLO.
        assert histogram.p99 > 50_000

    def test_slo_mode_publishes_stats_with_domain_label(self):
        slo = SloPolicy(p99_slo_us=10_000, sustain=2, cooldown=150_000,
                        min_window_count=5)
        system, _, balancer = run_hot_pair_scenario(slo=slo)
        snap = system.metrics.snapshot()
        assert snap.get(
            "policy.balancer.slo_breach_samples", domain="all"
        ) == balancer.stats.slo_breach_samples
        assert snap.get(
            "policy.balancer.migrations_started", domain="all"
        ) == balancer.stats.migrations_started

    def test_same_seed_same_decisions(self):
        slo = SloPolicy(p99_slo_us=10_000, sustain=2, cooldown=150_000,
                        min_window_count=5)
        first = run_hot_pair_scenario(seed=3, slo=slo)[2].stats
        second = run_hot_pair_scenario(seed=3, slo=slo)[2].stats
        assert first.moves == second.moves
        assert first.slo_breach_samples == second.slo_breach_samples
