"""Tests for balancer victim-selection strategies (§3.1 resource-use
patterns)."""

import pytest

from repro.kernel.memory import MemoryImage
from repro.policy.load_balancer import ThresholdLoadBalancer
from repro.workloads.compute import compute_bound
from tests.conftest import drain, make_bare_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestVictimStrategies:
    def test_unknown_strategy_rejected(self):
        system = make_bare_system()
        with pytest.raises(ValueError):
            ThresholdLoadBalancer(system, victim_strategy="vibes")

    def test_cheapest_moves_the_smallest_process(self):
        system = make_bare_system(machines=2)
        big = system.kernel(0).spawn(
            lambda ctx: compute_bound(ctx, total=500_000), name="big",
            memory=MemoryImage.sized(code=64_000, data=64_000, stack=1_000),
        )
        small = system.kernel(0).spawn(
            lambda ctx: compute_bound(ctx, total=500_000), name="small",
            memory=MemoryImage.sized(code=1_000, data=1_000, stack=500),
        )
        balancer = ThresholdLoadBalancer(
            system, interval=5_000, threshold=1, sustain=1,
            cooldown=10**9, victim_strategy="cheapest",
        )
        balancer.install()
        system.run(until=100_000)
        balancer.stop()
        drain(system, max_events=50_000_000)
        moved_pids = [pid for pid, _, _ in balancer.stats.moves]
        assert moved_pids and moved_pids[0] == str(small)

    def test_hungriest_moves_the_cpu_heavy_process(self):
        system = make_bare_system(machines=2)
        # A CPU hog and an idle waiter share machine 0.
        hog = system.kernel(0).spawn(
            lambda ctx: compute_bound(ctx, total=800_000), name="hog",
        )
        idler = system.kernel(0).spawn(parked, name="idler")
        # Give the hog time to accumulate CPU before balancing starts.
        system.run(until=50_000)
        balancer = ThresholdLoadBalancer(
            system, interval=5_000, threshold=1, sustain=1,
            cooldown=10**9, victim_strategy="hungriest",
        )
        balancer.install()
        system.run(until=200_000)
        balancer.stop()
        drain(system, max_events=50_000_000)
        moved_pids = [pid for pid, _, _ in balancer.stats.moves]
        assert moved_pids and moved_pids[0] == str(hog)

    def test_first_strategy_matches_paper_arbitrariness(self):
        """"The decision to move a particular process and the choice of
        destination were arbitrary" — the default picks the first
        eligible candidate deterministically."""
        system = make_bare_system(machines=2)
        a = system.kernel(0).spawn(
            lambda ctx: compute_bound(ctx, total=400_000), name="a",
        )
        b = system.kernel(0).spawn(
            lambda ctx: compute_bound(ctx, total=400_000), name="b",
        )
        balancer = ThresholdLoadBalancer(
            system, interval=5_000, threshold=1, sustain=1,
            cooldown=10**9, victim_strategy="first",
        )
        balancer.install()
        system.run(until=100_000)
        balancer.stop()
        drain(system, max_events=50_000_000)
        moved_pids = [pid for pid, _, _ in balancer.stats.moves]
        assert moved_pids and moved_pids[0] == str(min((a, b), key=str))
