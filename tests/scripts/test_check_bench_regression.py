"""Tests for scripts/check_bench_regression.py (the CI bench gate)."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = (
    Path(__file__).resolve().parents[2]
    / "scripts" / "check_bench_regression.py"
)

spec = importlib.util.spec_from_file_location("check_bench", SCRIPT)
check_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_bench)


def write_artifact(
    directory: Path, name: str, metrics: dict, meta: dict | None = None,
) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload = {
        "schema": check_bench.SCHEMA, "name": name, "metrics": metrics,
    }
    if meta is not None:
        payload["meta"] = meta
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "results", tmp_path / "baselines"


def run(results, baselines, *extra):
    return check_bench.main([
        "--results", str(results), "--baselines", str(baselines), *extra,
    ])


class TestComparison:
    def test_identical_artifacts_pass(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(results, "e1", {"admin_messages": 9})
        write_artifact(baselines, "e1", {"admin_messages": 9})
        assert run(results, baselines) == 0
        assert "OK" in capsys.readouterr().out

    def test_drift_within_tolerance_passes(self, dirs):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"downtime_us": 1000})
        write_artifact(results, "e1", {"downtime_us": 1100})
        assert run(results, baselines, "--tolerance", "0.2") == 0

    def test_drift_beyond_tolerance_fails(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"downtime_us": 1000})
        write_artifact(results, "e1", {"downtime_us": 1300})
        assert run(results, baselines, "--tolerance", "0.2") == 1
        assert "downtime_us" in capsys.readouterr().out

    def test_drift_is_relative_and_two_sided(self, dirs):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"v": 1000})
        write_artifact(results, "e1", {"v": 750})
        assert run(results, baselines, "--tolerance", "0.2") == 1
        write_artifact(results, "e1", {"v": 850})
        assert run(results, baselines, "--tolerance", "0.2") == 0

    def test_zero_baseline_requires_exact_match(self, dirs):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"errors": 0})
        write_artifact(results, "e1", {"errors": 1})
        assert run(results, baselines) == 1
        write_artifact(results, "e1", {"errors": 0})
        assert run(results, baselines) == 0

    def test_missing_metric_fails(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"a": 1, "b": 2})
        write_artifact(results, "e1", {"a": 1})
        assert run(results, baselines) == 1
        assert "disappeared" in capsys.readouterr().out

    def test_new_metric_is_noted_not_fatal(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"a": 1})
        write_artifact(results, "e1", {"a": 1, "brand_new": 5})
        assert run(results, baselines) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_missing_result_artifact_fails(self, dirs, capsys):
        results, baselines = dirs
        results.mkdir()
        write_artifact(baselines, "e1", {"a": 1})
        assert run(results, baselines) == 1
        assert "missing" in capsys.readouterr().out

    def test_result_without_baseline_fails(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"a": 1})
        write_artifact(results, "e1", {"a": 1})
        write_artifact(results, "e_new", {"fresh": 7})
        assert run(results, baselines) == 1
        out = capsys.readouterr().out
        assert "BENCH_e_new.json" in out
        assert "no committed baseline" in out

    def test_only_glob_scopes_unbaselined_check(self, dirs):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"a": 1})
        write_artifact(results, "e1", {"a": 1})
        write_artifact(results, "e_new", {"fresh": 7})
        # The new artifact is outside the subset this job gates.
        assert run(results, baselines, "--only", "BENCH_e1.json") == 0


class TestMetaIdentity:
    """A result from a differently parameterised run must fail as such,
    not as a pile of metric drifts."""

    def test_matching_meta_passes(self, dirs):
        results, baselines = dirs
        meta = {"machines": 64, "seed": 0}
        write_artifact(baselines, "e11", {"a": 5}, meta=meta)
        write_artifact(results, "e11", {"a": 5}, meta=meta)
        assert run(results, baselines) == 0

    def test_machine_count_mismatch_fails_loudly(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e11", {"a": 5},
                       meta={"machines": 64, "seed": 0})
        write_artifact(results, "e11", {"a": 5},
                       meta={"machines": 8, "seed": 0})
        assert run(results, baselines) == 1
        out = capsys.readouterr().out
        assert "meta.machines mismatch" in out

    def test_seed_mismatch_fails_loudly(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e11", {"a": 5},
                       meta={"machines": 64, "seed": 0})
        write_artifact(results, "e11", {"a": 5},
                       meta={"machines": 64, "seed": 7})
        assert run(results, baselines) == 1
        assert "meta.seed mismatch" in capsys.readouterr().out

    def test_meta_mismatch_suppresses_metric_diff(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e11", {"a": 5},
                       meta={"machines": 64, "seed": 0})
        # Metric wildly off — but the real problem is the wrong machine
        # count, and that is the only problem that should be reported.
        write_artifact(results, "e11", {"a": 50_000},
                       meta={"machines": 8, "seed": 0})
        assert run(results, baselines) == 1
        out = capsys.readouterr().out
        assert "meta.machines mismatch" in out
        assert "drifted" not in out

    def test_result_missing_pinned_key_fails(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e11", {"a": 5},
                       meta={"machines": 64, "seed": 0})
        write_artifact(results, "e11", {"a": 5}, meta={"seed": 0})
        assert run(results, baselines) == 1
        assert "lacks 'machines'" in capsys.readouterr().out

    def test_pre_meta_baseline_notes_but_passes(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e11", {"a": 5})
        write_artifact(results, "e11", {"a": 5},
                       meta={"machines": 64, "seed": 0})
        assert run(results, baselines) == 0
        assert "regenerate the baseline" in capsys.readouterr().out


class TestValidation:
    def test_wrong_schema_rejected(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"a": 1})
        bad = results / "BENCH_e1.json"
        results.mkdir()
        bad.write_text(json.dumps({
            "schema": "other/v9", "name": "e1", "metrics": {"a": 1},
        }))
        assert run(results, baselines) == 1
        assert "schema" in capsys.readouterr().out

    def test_non_numeric_metric_rejected(self, dirs):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"a": 1})
        results.mkdir()
        (results / "BENCH_e1.json").write_text(json.dumps({
            "schema": check_bench.SCHEMA, "name": "e1",
            "metrics": {"a": "fast"},
        }))
        assert run(results, baselines) == 1

    def test_no_baselines_is_usage_error(self, dirs):
        results, baselines = dirs
        results.mkdir()
        baselines.mkdir()
        assert run(results, baselines) == 2

    def test_negative_tolerance_rejected(self, dirs):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"a": 1})
        write_artifact(results, "e1", {"a": 1})
        with pytest.raises(SystemExit):
            run(results, baselines, "--tolerance", "-0.1")


class TestWallClockDiscipline:
    """Timing is host-dependent: it may ride along in meta but must
    never be a gated metric, and a committed speedup claim must name
    hardware that could actually have produced it."""

    def test_wall_clock_metric_rejected(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"wall_seconds": 1.5})
        write_artifact(results, "e1", {"wall_seconds": 1.5})
        assert run(results, baselines) == 1
        assert "belongs in 'meta'" in capsys.readouterr().out

    def test_speedup_metric_rejected(self, dirs, capsys):
        results, baselines = dirs
        write_artifact(baselines, "e1", {"speedup_4x": 2.1})
        write_artifact(results, "e1", {"speedup_4x": 2.1})
        assert run(results, baselines) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_wall_clock_in_meta_is_fine(self, dirs):
        results, baselines = dirs
        meta = {"machines": 8, "seed": 0, "wall_seconds": 1.5}
        write_artifact(baselines, "e1", {"a": 1}, meta=meta)
        write_artifact(results, "e1", {"a": 1}, meta=meta)
        assert run(results, baselines) == 0

    def test_single_core_speedup_claim_fails(self, dirs, capsys):
        results, baselines = dirs
        meta = {"machines": 8, "seed": 0, "cpu_count": 1, "speedup": 2.5}
        write_artifact(baselines, "e1", {"a": 1}, meta=meta)
        write_artifact(results, "e1", {"a": 1}, meta=meta)
        assert run(results, baselines) == 1
        out = capsys.readouterr().out
        assert "single-core host cannot show parallel speedup" in out

    def test_speedup_claim_without_cpu_count_fails(self, dirs, capsys):
        results, baselines = dirs
        meta = {"machines": 8, "seed": 0, "speedup": 2.5}
        write_artifact(baselines, "e1", {"a": 1}, meta=meta)
        write_artifact(results, "e1", {"a": 1}, meta=meta)
        assert run(results, baselines) == 1
        assert "no meta.cpu_count" in capsys.readouterr().out

    def test_honest_claims_pass(self, dirs):
        results, baselines = dirs
        # Sub-1x on one core is honest; above-1x needs the cores.
        for meta in (
            {"machines": 8, "seed": 0, "cpu_count": 1, "speedup": 0.9},
            {"machines": 8, "seed": 0, "cpu_count": 4, "speedup": 2.5},
        ):
            write_artifact(baselines, "e1", {"a": 1}, meta=meta)
            write_artifact(results, "e1", {"a": 1}, meta=meta)
            assert run(results, baselines) == 0


class TestRepoBaselines:
    def test_committed_baselines_are_wellformed(self):
        baselines = SCRIPT.parent.parent / "benchmarks" / "baselines"
        paths = sorted(baselines.glob("BENCH_*.json"))
        assert len(paths) >= 12
        for path in paths:
            document = check_bench.load_artifact(path)
            assert document["metrics"]
            assert check_bench.check_speedup_honesty(
                document["name"], document.get("meta", {}),
            ) == []

    def test_paper_headline_numbers_in_baselines(self):
        baselines = SCRIPT.parent.parent / "benchmarks" / "baselines"
        e1 = check_bench.load_artifact(
            baselines / "BENCH_e1_migration_cost.json"
        )["metrics"]
        # The §6 administrative cost: 9 messages of 6-12 bytes.
        assert e1["admin_messages"] == 9
        assert e1["admin_message_min_bytes"] >= 6
        assert e1["admin_message_max_bytes"] <= 12
        assert e1["resident_bytes"] == 250
        assert e1["swappable_bytes"] == 600
