"""Unit tests for the command interpreter's parsers."""

from repro.kernel.ids import ProcessId
from repro.servers.command_interpreter import _parse_pid, _parse_value


class TestParsePid:
    def test_valid(self):
        assert _parse_pid("2.5") == ProcessId(2, 5)
        assert _parse_pid("0.1") == ProcessId(0, 1)

    def test_invalid_shapes(self):
        assert _parse_pid("banana") is None
        assert _parse_pid("1") is None
        assert _parse_pid("1.2.3") is None
        assert _parse_pid("a.b") is None
        assert _parse_pid("") is None


class TestParseValue:
    def test_int(self):
        assert _parse_value("42") == 42
        assert _parse_value("-7") == -7

    def test_bool(self):
        assert _parse_value("true") is True
        assert _parse_value("False") is False

    def test_string_fallback(self):
        assert _parse_value("hello") == "hello"
        assert _parse_value("3.14") == "3.14"  # no float params in programs
