"""Tests for the command interpreter."""

from repro.servers.common import rpc
from tests.conftest import drain, make_system


def run_commands(system, lines, machine=3):
    """Send each command line in sequence; returns the reply payloads."""
    replies = []

    def client(ctx):
        for line in lines:
            reply = yield from rpc(
                ctx, ctx.bootstrap["command_interpreter"], "command",
                {"line": line}, payload_bytes=16 + len(line),
            )
            replies.append(reply.payload)
        yield ctx.exit()

    system.spawn(client, machine=machine, name="shell")
    drain(system)
    return replies


class TestCommands:
    def test_help(self):
        system = make_system()
        (reply,) = run_commands(system, ["help"])
        assert reply["ok"] and "commands:" in reply["text"]

    def test_empty_line_is_help(self):
        system = make_system()
        (reply,) = run_commands(system, ["   "])
        assert reply["ok"]

    def test_unknown_command(self):
        system = make_system()
        (reply,) = run_commands(system, ["frobnicate"])
        assert reply["ok"] is False

    def test_run_starts_a_process(self):
        system = make_system()
        (reply,) = run_commands(
            system, ["run compute on 2 total=1000 name=shelljob"],
        )
        assert reply["ok"], reply
        assert "started" in reply["text"]
        assert reply["pid"].creating_machine == 2

    def test_run_unknown_program(self):
        system = make_system()
        (reply,) = run_commands(system, ["run nonsense on 1"])
        assert reply["ok"] is False

    def test_ps_lists_started_process(self):
        system = make_system(notify_process_manager=True)
        run_reply, ps_reply = run_commands(
            system,
            ["run pinger on 1 rounds=10000 gap=100000 name=visible",
             "ps"],
        )
        assert run_reply["ok"]
        assert "visible" in ps_reply["text"]

    def test_migrate_command_moves_process(self):
        system = make_system(notify_process_manager=True)
        (run_reply,) = run_commands(
            system, ["run pinger on 1 rounds=10000 gap=100000"],
        )
        pid = run_reply["pid"]
        (migrate_reply,) = run_commands(
            system, [f"migrate {pid.creating_machine}.{pid.local_id} 3"],
        )
        assert migrate_reply["ok"], migrate_reply
        drain(system)
        assert system.where_is(pid) == 3

    def test_where_command(self):
        system = make_system(notify_process_manager=True)
        (run_reply,) = run_commands(
            system, ["run pinger on 2 rounds=10000 gap=100000"],
        )
        pid = run_reply["pid"]
        (where_reply,) = run_commands(
            system, [f"where {pid.creating_machine}.{pid.local_id}"],
        )
        assert where_reply["ok"]
        assert where_reply["machine"] == 2

    def test_bad_pid_syntax(self):
        system = make_system()
        (reply,) = run_commands(system, ["migrate banana 3"])
        assert reply["ok"] is False
        assert "bad pid" in reply["text"]

    def test_stop_command(self):
        from repro.kernel.process_state import ProcessStatus

        system = make_system(notify_process_manager=True)
        (run_reply,) = run_commands(
            system, ["run pinger on 1 rounds=10000 gap=100000"],
        )
        pid = run_reply["pid"]
        (stop_reply,) = run_commands(
            system, [f"stop {pid.creating_machine}.{pid.local_id}"],
        )
        assert stop_reply["ok"]
        drain(system)
        assert system.process_state(pid).status is ProcessStatus.SUSPENDED
