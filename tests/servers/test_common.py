"""Tests for the server/client RPC conventions."""

from repro.errors import ServerError
from repro.servers.common import Correlator, rpc, serve_reply
from tests.conftest import drain, make_bare_system
from repro.kernel.ids import ProcessAddress


class TestCorrelator:
    def test_register_and_pop(self):
        correlator = Correlator()
        rid = correlator.register({"a": 1})
        assert correlator.pop(rid) == {"a": 1}
        assert correlator.pop(rid) is None

    def test_ids_unique(self):
        correlator = Correlator()
        ids = {correlator.register(i) for i in range(10)}
        assert len(ids) == 10

    def test_len(self):
        correlator = Correlator()
        rid = correlator.register("x")
        assert len(correlator) == 1
        correlator.pop(rid)
        assert len(correlator) == 0


class TestRpcRoundTrip:
    def wire(self, server_program, client_program):
        system = make_bare_system()
        server_pid = system.spawn(server_program, machine=0, name="srv")
        system.kernel(1).spawn(
            client_program, name="cli",
            extra_links={"srv": ProcessAddress(server_pid, 0)},
        )
        drain(system)
        return system

    def test_rpc_returns_reply_message(self):
        out = {}

        def server(ctx):
            msg = yield ctx.receive()
            yield from serve_reply(ctx, msg, "pong", {"v": 42})
            yield ctx.exit()

        def client(ctx):
            reply = yield from rpc(ctx, ctx.bootstrap["srv"], "ping")
            out["op"] = reply.op
            out["v"] = reply.payload["v"]
            yield ctx.exit()

        self.wire(server, client)
        assert out == {"op": "pong", "v": 42}

    def test_rpc_timeout_returns_none(self):
        out = {}

        def server(ctx):
            yield ctx.receive()  # never replies
            yield ctx.receive()

        def client(ctx):
            reply = yield from rpc(
                ctx, ctx.bootstrap["srv"], "ping", timeout=10_000,
            )
            out["reply"] = reply
            yield ctx.exit()

        self.wire(server, client)
        assert out["reply"] is None

    def test_rpc_raises_on_dead_service(self):
        out = {}

        def server(ctx):
            yield ctx.exit()

        def client(ctx):
            yield ctx.sleep(5_000)
            try:
                yield from rpc(ctx, ctx.bootstrap["srv"], "ping")
            except ServerError:
                out["raised"] = True
            yield ctx.exit()

        self.wire(server, client)
        assert out.get("raised")

    def test_serve_reply_echoes_req_id(self):
        out = {}

        def server(ctx):
            msg = yield ctx.receive()
            yield from serve_reply(ctx, msg, "pong",
                                   {"stale_req_id": "overwritten"})
            yield ctx.exit()

        def client(ctx):
            reply_link = yield ctx.create_link()
            yield ctx.send(ctx.bootstrap["srv"], op="ping",
                          payload={"req_id": ("me", 7)},
                          links=(reply_link,))
            reply = yield ctx.receive()
            out["req_id"] = reply.payload["req_id"]
            yield ctx.exit()

        self.wire(server, client)
        assert out["req_id"] == ("me", 7)

    def test_serve_reply_without_reply_link_is_noop(self):
        out = {"served": False}

        def server(ctx):
            msg = yield ctx.receive()
            yield from serve_reply(ctx, msg, "pong", {})
            out["served"] = True
            yield ctx.exit()

        def client(ctx):
            yield ctx.send(ctx.bootstrap["srv"], op="fire-and-forget")
            yield ctx.exit()

        self.wire(server, client)
        assert out["served"]

    def test_reply_link_destroyed_after_use(self):
        """Reply links are the paper's short-lived links: used once and
        torn down on both sides."""
        counts = {}

        def server(ctx):
            msg = yield ctx.receive()
            yield from serve_reply(ctx, msg, "pong", {})
            info = yield ctx.get_info()
            counts["server_links"] = info["link_count"]
            yield ctx.exit()

        def client(ctx):
            reply = yield from rpc(ctx, ctx.bootstrap["srv"], "ping")
            assert reply is not None
            info = yield ctx.get_info()
            counts["client_links"] = info["link_count"]
            yield ctx.exit()

        self.wire(server, client)
        # Server: reply link materialised then destroyed -> 0.
        assert counts["server_links"] == 0
        # Client: bootstrap link to the server remains, reply link gone.
        assert counts["client_links"] == 1
