"""Tests for the four-process file system."""

from repro.errors import FileSystemError
from repro.servers.filesystem import BLOCK_SIZE, FileClient
from tests.conftest import drain, make_system


def run_client(system, script, machine=0):
    """Spawn a program built from *script(fs, out)* and drain."""
    out = {}

    def program(ctx):
        fs = FileClient(ctx)
        yield from script(fs, out)
        yield ctx.exit()

    system.spawn(program, machine=machine, name="fs-test-client")
    drain(system)
    return out


class TestBasicOperations:
    def test_create_open_close(self):
        system = make_system()

        def script(fs, out):
            out["create"] = yield from fs.create("a.txt")
            out["handle"] = yield from fs.open("a.txt")
            out["closed"] = yield from fs.close(out["handle"])

        out = run_client(system, script)
        assert out["create"]["ok"]
        assert out["handle"] >= 1
        assert out["closed"] is True

    def test_write_then_read_round_trip(self):
        system = make_system()
        payload = b"the quick brown fox jumps over the lazy dog"

        def script(fs, out):
            yield from fs.create("f")
            handle = yield from fs.open("f")
            out["written"] = yield from fs.write(handle, 0, payload)
            out["data"] = yield from fs.read(handle, 0, len(payload))

        out = run_client(system, script)
        assert out["written"] == len(payload)
        assert out["data"] == payload

    def test_write_spanning_blocks(self):
        system = make_system()
        payload = bytes(range(256)) * 5  # 1280 bytes: 3 blocks of 512

        def script(fs, out):
            yield from fs.create("big")
            handle = yield from fs.open("big")
            yield from fs.write(handle, 0, payload)
            out["data"] = yield from fs.read(handle, 0, len(payload))

        out = run_client(system, script)
        assert out["data"] == payload

    def test_partial_overwrite_preserves_rest(self):
        system = make_system()

        def script(fs, out):
            yield from fs.create("f")
            handle = yield from fs.open("f")
            yield from fs.write(handle, 0, b"AAAAAAAAAA")
            yield from fs.write(handle, 3, b"bbb")
            out["data"] = yield from fs.read(handle, 0, 10)

        out = run_client(system, script)
        assert out["data"] == b"AAAbbbAAAA"

    def test_unaligned_offset_write(self):
        system = make_system()

        def script(fs, out):
            yield from fs.create("f")
            handle = yield from fs.open("f")
            # Straddle the first block boundary.
            yield from fs.write(handle, BLOCK_SIZE - 4, b"12345678")
            out["data"] = yield from fs.read(handle, BLOCK_SIZE - 4, 8)
            stat = yield from fs.stat("f")
            out["size"] = stat["size"]

        out = run_client(system, script)
        assert out["data"] == b"12345678"
        assert out["size"] == BLOCK_SIZE + 4

    def test_read_past_eof_truncates(self):
        system = make_system()

        def script(fs, out):
            yield from fs.create("f")
            handle = yield from fs.open("f")
            yield from fs.write(handle, 0, b"short")
            out["data"] = yield from fs.read(handle, 0, 1_000)

        out = run_client(system, script)
        assert out["data"] == b"short"

    def test_open_missing_file_raises(self):
        system = make_system()

        def script(fs, out):
            try:
                yield from fs.open("missing")
            except FileSystemError:
                out["raised"] = True

        assert run_client(system, script)["raised"]

    def test_create_duplicate_fails(self):
        system = make_system()

        def script(fs, out):
            yield from fs.create("dup")
            out["second"] = yield from fs.create("dup")

        out = run_client(system, script)
        assert out["second"]["ok"] is False

    def test_delete_and_list(self):
        system = make_system()

        def script(fs, out):
            yield from fs.create("one")
            yield from fs.create("two")
            out["before"] = yield from fs.list()
            out["deleted"] = yield from fs.delete("one")
            out["after"] = yield from fs.list()

        out = run_client(system, script)
        assert out["before"] == ["one", "two"]
        assert out["deleted"] is True
        assert out["after"] == ["two"]

    def test_stat_reports_size(self):
        system = make_system()

        def script(fs, out):
            yield from fs.create("s")
            handle = yield from fs.open("s")
            yield from fs.write(handle, 0, b"x" * 700)
            out["stat"] = yield from fs.stat("s")

        out = run_client(system, script)
        assert out["stat"]["size"] == 700
        assert len(out["stat"]["blocks"]) == 2

    def test_read_with_bad_handle(self):
        system = make_system()

        def script(fs, out):
            try:
                yield from fs.read(999, 0, 10)
            except FileSystemError:
                out["raised"] = True

        assert run_client(system, script)["raised"]


class TestConcurrencyAndCaching:
    def test_interleaved_clients_do_not_corrupt(self):
        system = make_system()
        results = {}

        def make_client(tag):
            def program(ctx):
                fs = FileClient(ctx)
                name = f"c{tag}"
                yield from fs.create(name)
                handle = yield from fs.open(name)
                payload = bytes([tag]) * 300
                yield from fs.write(handle, 0, payload)
                data = yield from fs.read(handle, 0, 300)
                results[tag] = data == payload
                yield ctx.exit()
            return program

        for tag in range(1, 5):
            system.spawn(make_client(tag), machine=tag % 4)
        drain(system)
        assert results == {1: True, 2: True, 3: True, 4: True}

    def test_buffer_cache_serves_repeat_reads(self):
        system = make_system()
        out = {}

        def program(ctx):
            from repro.servers.common import rpc

            fs = FileClient(ctx)
            yield from fs.create("hot")
            handle = yield from fs.open("hot")
            yield from fs.write(handle, 0, b"z" * 100)
            for _ in range(5):
                yield from fs.read(handle, 0, 100)
            reply = yield from rpc(
                ctx, ctx.bootstrap["file_system"], "fs-ops", {},
            )
            out["ops"] = reply.payload["operations"]
            yield ctx.exit()

        system.spawn(program, machine=0)
        drain(system)
        # Buffer manager stats: the repeated reads hit the cache.
        buffer_pid = system.server_pids["buffer_manager"]
        assert system.is_alive(buffer_pid)
        assert out["ops"] >= 7
