"""Tests for the individual file-system processes (buffer cache, disk,
directory manager), driven through their own message protocols."""

from repro.kernel.ids import ProcessAddress
from repro.servers.common import rpc
from repro.servers.filesystem import (
    BLOCK_SIZE,
    buffer_manager_program,
    directory_manager_program,
    disk_driver_program,
)
from tests.conftest import drain, make_bare_system


def boot_pair(system, capacity=4):
    """Spawn disk + buffer manager on machine 0; returns their addresses."""
    kernel = system.kernel(0)
    disk_pid = kernel.spawn(disk_driver_program, name="disk_driver")
    disk_addr = ProcessAddress(disk_pid, 0)
    buffer_pid = kernel.spawn(
        lambda ctx: buffer_manager_program(ctx, capacity=capacity),
        name="buffer_manager",
        extra_links={"disk_driver": disk_addr},
    )
    return disk_addr, ProcessAddress(buffer_pid, 0)


def run_script(system, target_addr, script, out):
    """Run *script(ctx, link, out)* against a service address."""

    def client(ctx):
        yield from script(ctx, ctx.bootstrap["target"], out)
        yield ctx.exit()

    system.kernel(1).spawn(
        client, name="client", extra_links={"target": target_addr},
    )
    drain(system)
    return out


class TestDiskDriver:
    def test_unwritten_block_reads_zeroes(self):
        system = make_bare_system()
        kernel = system.kernel(0)
        disk_pid = kernel.spawn(disk_driver_program, name="disk")
        out = {}

        def script(ctx, link, out):
            reply = yield from rpc(ctx, link, "disk-read", {"block": 9})
            out["data"] = reply.payload["data"]

        run_script(system, ProcessAddress(disk_pid, 0), script, out)
        assert out["data"] == bytes(BLOCK_SIZE)

    def test_write_then_read_and_stats(self):
        system = make_bare_system()
        kernel = system.kernel(0)
        disk_pid = kernel.spawn(disk_driver_program, name="disk")
        out = {}

        def script(ctx, link, out):
            yield from rpc(ctx, link, "disk-write",
                           {"block": 3, "data": b"v" * BLOCK_SIZE})
            reply = yield from rpc(ctx, link, "disk-read", {"block": 3})
            out["data"] = reply.payload["data"]
            stats = yield from rpc(ctx, link, "disk-stats", {})
            out["stats"] = stats.payload

        run_script(system, ProcessAddress(disk_pid, 0), script, out)
        assert out["data"] == b"v" * BLOCK_SIZE
        assert out["stats"]["reads"] == 1
        assert out["stats"]["writes"] == 1
        assert out["stats"]["blocks_used"] == 1

    def test_short_write_padded_to_block(self):
        system = make_bare_system()
        kernel = system.kernel(0)
        disk_pid = kernel.spawn(disk_driver_program, name="disk")
        out = {}

        def script(ctx, link, out):
            yield from rpc(ctx, link, "disk-write",
                           {"block": 0, "data": b"abc"})
            reply = yield from rpc(ctx, link, "disk-read", {"block": 0})
            out["data"] = reply.payload["data"]

        run_script(system, ProcessAddress(disk_pid, 0), script, out)
        assert out["data"].startswith(b"abc")
        assert len(out["data"]) == BLOCK_SIZE


class TestBufferManager:
    def test_cache_hit_skips_disk(self):
        system = make_bare_system()
        disk_addr, buffer_addr = boot_pair(system)
        out = {}

        def script(ctx, link, out):
            yield from rpc(ctx, link, "bread", {"block": 1})
            yield from rpc(ctx, link, "bread", {"block": 1})
            yield from rpc(ctx, link, "bread", {"block": 1})
            stats = yield from rpc(ctx, link, "buffer-stats", {})
            out["stats"] = stats.payload

        run_script(system, buffer_addr, script, out)
        assert out["stats"]["misses"] == 1
        assert out["stats"]["hits"] == 2

    def test_lru_eviction_at_capacity(self):
        system = make_bare_system()
        disk_addr, buffer_addr = boot_pair(system, capacity=2)
        out = {}

        def script(ctx, link, out):
            for block in (1, 2, 3):  # 3 evicts 1
                yield from rpc(ctx, link, "bread", {"block": block})
            yield from rpc(ctx, link, "bread", {"block": 1})  # miss again
            stats = yield from rpc(ctx, link, "buffer-stats", {})
            out["stats"] = stats.payload

        run_script(system, buffer_addr, script, out)
        assert out["stats"]["misses"] == 4
        assert out["stats"]["cached"] == 2

    def test_write_through_persists_past_eviction(self):
        system = make_bare_system()
        disk_addr, buffer_addr = boot_pair(system, capacity=1)
        out = {}

        def script(ctx, link, out):
            yield from rpc(ctx, link, "bwrite",
                           {"block": 5, "data": b"W" * BLOCK_SIZE})
            # Evict block 5 by touching another block.
            yield from rpc(ctx, link, "bread", {"block": 6})
            reply = yield from rpc(ctx, link, "bread", {"block": 5})
            out["data"] = reply.payload["data"]

        run_script(system, buffer_addr, script, out)
        assert out["data"] == b"W" * BLOCK_SIZE


class TestDirectoryManager:
    def boot(self, system):
        pid = system.kernel(0).spawn(
            directory_manager_program, name="dirmgr",
        )
        return ProcessAddress(pid, 0)

    def test_create_lookup_delete_cycle(self):
        system = make_bare_system()
        addr = self.boot(system)
        out = {}

        def script(ctx, link, out):
            created = yield from rpc(ctx, link, "dir-create", {"name": "f"})
            out["inode"] = created.payload["inode"]
            found = yield from rpc(ctx, link, "dir-lookup", {"name": "f"})
            out["found"] = found.payload["ok"]
            yield from rpc(ctx, link, "dir-delete", {"name": "f"})
            gone = yield from rpc(ctx, link, "dir-lookup", {"name": "f"})
            out["gone"] = not gone.payload["ok"]

        run_script(system, addr, script, out)
        assert out["inode"] == 1
        assert out["found"] and out["gone"]

    def test_extend_allocates_distinct_blocks(self):
        system = make_bare_system()
        addr = self.boot(system)
        out = {}

        def script(ctx, link, out):
            a = yield from rpc(ctx, link, "dir-create", {"name": "a"})
            b = yield from rpc(ctx, link, "dir-create", {"name": "b"})
            ext_a = yield from rpc(ctx, link, "dir-extend",
                                   {"inode": a.payload["inode"],
                                    "size": 1_024})
            ext_b = yield from rpc(ctx, link, "dir-extend",
                                   {"inode": b.payload["inode"],
                                    "size": 1_024})
            out["a_blocks"] = ext_a.payload["blocks"]
            out["b_blocks"] = ext_b.payload["blocks"]

        run_script(system, addr, script, out)
        assert len(out["a_blocks"]) == 2
        assert not set(out["a_blocks"]) & set(out["b_blocks"])

    def test_extend_never_shrinks(self):
        system = make_bare_system()
        addr = self.boot(system)
        out = {}

        def script(ctx, link, out):
            created = yield from rpc(ctx, link, "dir-create", {"name": "f"})
            inode = created.payload["inode"]
            yield from rpc(ctx, link, "dir-extend",
                           {"inode": inode, "size": 2_000})
            small = yield from rpc(ctx, link, "dir-extend",
                                   {"inode": inode, "size": 100})
            out["size"] = small.payload["size"]

        run_script(system, addr, script, out)
        assert out["size"] == 2_000

    def test_bad_inode_stat(self):
        system = make_bare_system()
        addr = self.boot(system)
        out = {}

        def script(ctx, link, out):
            reply = yield from rpc(ctx, link, "dir-stat", {"inode": 77})
            out["ok"] = reply.payload["ok"]

        run_script(system, addr, script, out)
        assert out["ok"] is False
