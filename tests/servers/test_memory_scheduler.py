"""Tests for the memory scheduler."""

from repro.servers.common import rpc
from tests.conftest import drain, make_system


def ask(system, requests, machine=3):
    """Run a client that performs the given (op, payload) requests."""
    replies = []

    def client(ctx):
        for op, payload in requests:
            reply = yield from rpc(
                ctx, ctx.bootstrap["memory_scheduler"], op, payload,
            )
            replies.append(reply.payload)
        yield ctx.exit()

    system.spawn(client, machine=machine, name="ms-client")
    drain(system)
    return replies


class TestPlacement:
    def test_round_robin_without_reports(self):
        system = make_system()
        replies = ask(system, [("place", {"bytes": 100})] * 4)
        machines = [r["machine"] for r in replies]
        assert machines == [0, 1, 2, 3]

    def test_placement_prefers_most_free_memory(self):
        system = make_system()
        replies = ask(system, [
            ("report-memory", {"machine": 0, "free": 100}),
            ("report-memory", {"machine": 1, "free": 900}),
            ("report-memory", {"machine": 2, "free": 500}),
            ("place", {"bytes": 50}),
        ])
        assert replies[-1]["machine"] == 1

    def test_placement_skips_machines_that_cannot_fit(self):
        system = make_system()
        replies = ask(system, [
            ("report-memory", {"machine": 0, "free": 1_000}),
            ("report-memory", {"machine": 1, "free": 100}),
            ("place", {"bytes": 500}),
        ])
        assert replies[-1]["machine"] == 0

    def test_status_returns_reports(self):
        system = make_system()
        replies = ask(system, [
            ("report-memory", {"machine": 2, "free": 123}),
            ("status", {}),
        ])
        assert replies[-1]["free_bytes"] == {2: 123}

    def test_unknown_op_is_an_error_reply(self):
        system = make_system()
        (reply,) = ask(system, [("defragment", {})])
        assert reply["ok"] is False
