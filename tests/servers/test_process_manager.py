"""Tests for the process manager (§2.3, §3.1)."""

from repro.servers.common import rpc
from tests.conftest import drain, make_system


def pm_request(system, op, payload, machine=3, notify=True):
    """Drive one PM request from a scratch client; returns the reply."""
    out = {}

    def client(ctx):
        reply = yield from rpc(
            ctx, ctx.bootstrap["process_manager"], op, payload,
        )
        out.update(reply.payload)
        yield ctx.exit()

    system.spawn(client, machine=machine, name="pm-client")
    drain(system)
    return out


class TestCreateProcess:
    def test_create_on_explicit_machine(self):
        system = make_system()
        out = pm_request(
            system, "create-process",
            {"program": "compute", "machine": 2,
             "params": {"total": 1_000}, "name": "job"},
        )
        assert out["ok"]
        assert out["machine"] == 2
        assert out["pid"].creating_machine == 2

    def test_create_with_placement_via_memory_scheduler(self):
        system = make_system()
        out = pm_request(
            system, "create-process",
            {"program": "compute", "params": {"total": 1_000}},
        )
        assert out["ok"]
        assert out["machine"] in range(4)

    def test_unknown_program_reports_error(self):
        system = make_system()
        out = pm_request(
            system, "create-process", {"program": "nonsense"},
        )
        assert out["ok"] is False
        assert "unknown program" in out["error"]

    def test_created_process_actually_runs(self, board):
        system = make_system()
        from repro.workloads.results import DEFAULT_BOARD

        DEFAULT_BOARD.clear()
        out = pm_request(
            system, "create-process",
            {"program": "compute", "machine": 1,
             "params": {"total": 2_000, "key": "pm-spawned"}},
        )
        assert out["ok"]
        drain(system)
        assert len(DEFAULT_BOARD.get("pm-spawned")) == 1
        DEFAULT_BOARD.clear()


class TestControl:
    def test_pm_migrate_moves_process(self):
        system = make_system(notify_process_manager=True)
        out = pm_request(
            system, "create-process",
            {"program": "pinger", "machine": 2,
             "params": {"rounds": 1_000, "gap": 5_000}},
        )
        pid = out["pid"]
        # No echo server exists, so the pinger parks in lookup — fine,
        # we only care that it can be moved.
        moved = pm_request(system, "migrate", {"pid": pid, "dest": 3})
        assert moved["ok"]
        drain(system)
        assert system.where_is(pid) == 3

    def test_pm_migrate_unknown_pid_fails(self):
        from repro.kernel.ids import ProcessId

        system = make_system()
        out = pm_request(
            system, "migrate", {"pid": ProcessId(0, 99), "dest": 1},
        )
        assert out["ok"] is False

    def test_pm_stop_and_start(self):
        from repro.kernel.process_state import ProcessStatus

        system = make_system(notify_process_manager=True)
        out = pm_request(
            system, "create-process",
            {"program": "pinger", "machine": 2,
             "params": {"rounds": 10_000, "gap": 100_000}},
        )
        pid = out["pid"]
        stopped = pm_request(system, "stop", {"pid": pid})
        assert stopped["ok"]
        drain(system)
        assert system.process_state(pid).status is ProcessStatus.SUSPENDED
        started = pm_request(system, "start", {"pid": pid})
        assert started["ok"]
        drain(system)
        assert system.process_state(pid).status is not ProcessStatus.SUSPENDED

    def test_pm_tracks_migrations_via_notifications(self):
        system = make_system(notify_process_manager=True)
        out = pm_request(
            system, "create-process",
            {"program": "pinger", "machine": 1,
             "params": {"rounds": 10_000, "gap": 100_000}},
        )
        pid = out["pid"]
        system.migrate(pid, 3)  # direct kernel-level move, not via PM
        drain(system)
        status = pm_request(system, "status", {})
        assert status["processes"][str(pid)]["machine"] == 3

    def test_status_lists_known_processes(self):
        system = make_system(notify_process_manager=True)
        out = pm_request(
            system, "create-process",
            {"program": "compute", "machine": 0,
             "params": {"total": 500}, "name": "listed"},
        )
        status = pm_request(system, "status", {})
        assert str(out["pid"]) in status["processes"]


class TestWhereIs:
    def test_where_is_via_user_reply(self):
        system = make_system(notify_process_manager=True)
        out = pm_request(
            system, "create-process",
            {"program": "pinger", "machine": 2,
             "params": {"rounds": 10_000, "gap": 100_000}},
        )
        pid = out["pid"]
        answer = pm_request(system, "where-is", {"pid": pid})
        assert answer["ok"] and answer["machine"] == 2

    def test_where_is_unknown_pid(self):
        from repro.kernel.ids import ProcessId

        system = make_system()
        answer = pm_request(system, "where-is", {"pid": ProcessId(9, 9)})
        assert answer["ok"] is False
