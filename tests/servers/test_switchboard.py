"""Tests for the switchboard (paper §2.3)."""

from repro.servers.common import lookup_service, rpc
from repro.servers.switchboard import register_service
from tests.conftest import drain, make_system


class TestRegistration:
    def test_register_then_lookup(self):
        system = make_system()
        log = []

        def provider(ctx):
            yield from register_service(ctx, "svc")
            msg = yield ctx.receive()
            log.append(msg.op)
            yield ctx.exit()

        def consumer(ctx):
            yield ctx.sleep(2_000)
            link = yield from lookup_service(ctx, "svc")
            yield ctx.send(link, op="direct-hit")
            yield ctx.exit()

        system.spawn(provider, machine=1, name="provider")
        system.spawn(consumer, machine=2, name="consumer")
        drain(system)
        assert log == ["direct-hit"]

    def test_lookup_before_registration_parks_until_ready(self):
        system = make_system()
        log = []

        def consumer(ctx):
            link = yield from lookup_service(ctx, "late-svc")
            yield ctx.send(link, op="found-you")
            yield ctx.exit()

        def provider(ctx):
            yield ctx.sleep(10_000)  # register long after the lookup
            yield from register_service(ctx, "late-svc")
            msg = yield ctx.receive()
            log.append(msg.op)
            yield ctx.exit()

        system.spawn(consumer, machine=2, name="consumer")
        system.spawn(provider, machine=1, name="provider")
        drain(system)
        assert log == ["found-you"]

    def test_nonwaiting_lookup_fails_fast(self):
        system = make_system()
        outcome = {}

        def consumer(ctx):
            reply = yield from rpc(
                ctx, ctx.bootstrap["switchboard"], "lookup",
                payload={"name": "ghost", "wait": False},
            )
            outcome.update(reply.payload)
            yield ctx.exit()

        system.spawn(consumer, machine=0)
        drain(system)
        assert outcome["ok"] is False

    def test_reregistration_replaces(self):
        system = make_system()
        log = []

        def provider_a(ctx):
            yield from register_service(ctx, "svc")
            while True:
                msg = yield ctx.receive()
                if msg.op == "probe":
                    log.append("a")

        def provider_b(ctx):
            yield ctx.sleep(3_000)
            yield from register_service(ctx, "svc")
            while True:
                msg = yield ctx.receive()
                if msg.op == "probe":
                    log.append("b")

        def consumer(ctx):
            yield ctx.sleep(10_000)
            link = yield from lookup_service(ctx, "svc")
            yield ctx.send(link, op="probe")
            yield ctx.exit()

        system.spawn(provider_a, machine=1)
        system.spawn(provider_b, machine=2)
        system.spawn(consumer, machine=3)
        drain(system)
        assert log == ["b"]

    def test_unregister(self):
        system = make_system()
        outcome = {}

        def provider(ctx):
            yield from register_service(ctx, "svc")
            reply = yield from rpc(
                ctx, ctx.bootstrap["switchboard"], "unregister",
                payload={"name": "svc"},
            )
            outcome["unregistered"] = reply.payload["ok"]
            reply = yield from rpc(
                ctx, ctx.bootstrap["switchboard"], "lookup",
                payload={"name": "svc", "wait": False},
            )
            outcome["lookup_ok"] = reply.payload["ok"]
            yield ctx.exit()

        system.spawn(provider, machine=1)
        drain(system)
        assert outcome == {"unregistered": True, "lookup_ok": False}

    def test_list_names(self):
        system = make_system()
        outcome = {}

        def provider(ctx):
            yield from register_service(ctx, "alpha")
            yield from register_service(ctx, "beta")
            reply = yield from rpc(
                ctx, ctx.bootstrap["switchboard"], "list", payload={},
            )
            outcome["names"] = reply.payload["names"]
            yield ctx.exit()

        system.spawn(provider, machine=1)
        drain(system)
        assert outcome["names"] == ["alpha", "beta"]

    def test_lookup_survives_provider_migration(self):
        """The switchboard's stored link keeps working after the provider
        moves (context independence + forwarding)."""
        system = make_system()
        log = []

        def provider(ctx):
            yield from register_service(ctx, "movable")
            while True:
                msg = yield ctx.receive()
                if msg.op == "probe":
                    log.append(ctx.machine)

        def consumer(ctx):
            yield ctx.sleep(30_000)
            link = yield from lookup_service(ctx, "movable")
            yield ctx.send(link, op="probe")
            yield ctx.exit()

        provider_pid = system.spawn(provider, machine=2, name="provider")
        system.spawn(consumer, machine=3, name="consumer")
        system.run(until=10_000)
        system.migrate(provider_pid, 0)
        drain(system)
        assert log == [0]
