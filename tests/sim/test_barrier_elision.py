"""Barrier elision: keyed tie-breaks, rendezvous cadence, sync stats.

The elided engine's claim is the classic determinism gate plus one
more: with ``barrier_elision=True`` the gated counters are identical
not only across shard counts but also to the classic engine on the
same topology — the keyed event loop reproduces the classic injection
order bitwise, so skipping barriers is unobservable in the simulation.
"""

import pickle

import pytest

from repro.core.config import SystemConfig
from repro.errors import ClockError, ConfigError, SimulationError
from repro.net.topology import Topology
from repro.sim.barrier import (
    CapturedPayload,
    ElidedSerialRunner,
    HopRecord,
    SyncStats,
    WorkerBarrier,
    merge_sorted_records,
    pack_blob,
    pack_record,
    rendezvous_schedule,
    sort_records,
    unpack_record,
)
from repro.sim.loop import EventLoop, KeyedEventLoop
from repro.sim.shard import ShardedSystem, ShardPlan
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard


# ---------------------------------------------------------------------------
# KeyedEventLoop units
# ---------------------------------------------------------------------------


class TestKeyedEventLoop:
    def test_grid_must_be_positive(self):
        with pytest.raises(ValueError, match="grid"):
            KeyedEventLoop(0)

    def test_locals_keep_schedule_order_within_a_window(self):
        loop = KeyedEventLoop(10)
        fired = []
        loop.call_at(25, fired.append, "a")
        loop.call_after(25, fired.append, "b")
        loop.call_at(25, fired.append, "c")
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_records_slot_between_window_locals(self):
        """The canonical slot: window-g locals, then window-g records,
        then window-g+1 locals — regardless of injection order."""
        loop = KeyedEventLoop(10)
        fired = []
        # Window-1 record injected *before* anything else exists.
        loop.schedule_record(
            HopRecord(25, 0, 1, 1, None, gen=1), fired.append, "rec-g1"
        )
        loop.schedule_record(
            HopRecord(25, 0, 1, 2, None, gen=0), fired.append, "rec-g0-b"
        )
        loop.schedule_record(
            HopRecord(25, 0, 1, 1, None, gen=0), fired.append, "rec-g0-a"
        )
        loop.call_at(25, fired.append, "local-g0")  # now=0 -> window 0
        # Advance the clock into window 1, then schedule another local.
        loop.call_at(12, loop.call_at, 25, fired.append, "local-g1")
        loop.run()
        assert fired == [
            "local-g0", "rec-g0-a", "rec-g0-b", "local-g1", "rec-g1",
        ]

    def test_record_order_is_injection_order_free(self):
        loop_a = KeyedEventLoop(10)
        loop_b = KeyedEventLoop(10)
        records = [
            HopRecord(40, src, dst, seq, None, gen=2)
            for src, dst, seq in [(3, 1, 1), (0, 1, 5), (0, 1, 2)]
        ]
        fired_a, fired_b = [], []
        for r in records:
            loop_a.schedule_record(r, fired_a.append, r)
        for r in reversed(records):
            loop_b.schedule_record(r, fired_b.append, r)
        loop_a.run()
        loop_b.run()
        assert fired_a == fired_b == sort_records(records)

    def test_schedule_record_rejects_past_arrivals(self):
        loop = KeyedEventLoop(10)
        loop.call_at(50, lambda: None)
        loop.run()
        with pytest.raises(ClockError):
            loop.schedule_record(
                HopRecord(25, 0, 1, 1, None), lambda: None
            )


# ---------------------------------------------------------------------------
# Schedule / merge helpers
# ---------------------------------------------------------------------------


class TestRendezvousSchedule:
    def test_pairs_meet_at_their_own_cadence(self):
        schedule = rendezvous_schedule({(0, 1): 2, (1, 2): 3}, 6)
        assert schedule == [
            (2, 0, 1), (3, 1, 2), (4, 0, 1), (6, 0, 1), (6, 1, 2),
        ]

    def test_empty_before_first_period(self):
        assert rendezvous_schedule({(0, 1): 1000}, 999) == []


class TestMergeSortedRecords:
    def test_merge_equals_sorted_concatenation(self):
        a = sort_records([
            HopRecord(30, 0, 4, 1, None),
            HopRecord(10, 1, 4, 2, None),
            HopRecord(10, 1, 4, 1, None),
        ])
        b = sort_records([
            HopRecord(10, 2, 5, 1, None),
            HopRecord(20, 0, 5, 1, None),
        ])
        assert merge_sorted_records([a, b]) == sort_records(a + b)


class TestPackBlob:
    def test_roundtrip(self):
        record = HopRecord(10, 0, 1, 1, "payload", gen=3)
        assert pickle.loads(pack_blob([record])) == [record]


class TestRecordWireFormat:
    """The per-record blob: atom tokens, positional state, envelopes."""

    @staticmethod
    def _record(serial_burn=0):
        from repro.kernel.ids import ProcessAddress, ProcessId
        from repro.kernel.links import (
            DataArea,
            Link,
            LinkAttribute,
            LinkSnapshot,
        )
        from repro.kernel.messages import Message, MessageKind
        from repro.net.packet import Packet, PacketKind

        # Burn serials so two builds of the "same" record come from
        # visibly different counter states (the serial-executor case).
        for _ in range(serial_burn):
            Packet(0, 0, PacketKind.ACK, 0, None, 0)
        snap = LinkSnapshot(
            ProcessAddress(ProcessId(1, 7), 3),
            LinkAttribute.DATA_READ,
            DataArea(0, 64),
        )
        message = Message(
            dest=ProcessAddress(ProcessId(2, 9), 4),
            sender=ProcessAddress(ProcessId(0, 3), 0),
            kind=MessageKind.USER,
            op="req",
            payload={"n": 1},
            payload_bytes=16,
            links=(snap, LinkSnapshot.of(Link(snap.address))),
        )
        message.delivered_link_ids = (9, 10)  # receiver-local noise
        packet = Packet(0, 4, PacketKind.DATA, 5, message, 40)
        return HopRecord(12_000, 0, 4, 5, packet, gen=12)

    def test_roundtrip_restores_the_wire_fields(self):
        from repro.kernel.links import LinkAttribute
        from repro.net.packet import PacketKind

        blob = pack_record(self._record())
        back = unpack_record(blob)
        assert (back.arrival, back.src, back.dst, back.wire_seq) == (
            12_000, 0, 4, 5,
        )
        assert back.gen == 12
        packet = back.packet
        assert packet.kind is PacketKind.DATA
        message = packet.payload
        assert message.op == "req"
        assert message.links[0].attributes is LinkAttribute.DATA_READ
        assert message.dest.pid.local_id == 9
        assert hash(message.dest.pid) == hash(message.dest.pid)

    def test_receiver_local_state_is_minted_fresh(self):
        original = self._record()
        back = unpack_record(pack_record(original))
        # Serials are address-space diagnostics: re-minted, not copied.
        assert back.packet.serial != original.packet.serial
        assert back.packet.payload.serial != original.packet.payload.serial
        # Delivery marks belong to the receiver that made them.
        assert original.packet.payload.delivered_link_ids == (9, 10)
        assert back.packet.payload.delivered_link_ids == ()

    def test_blob_bytes_ignore_producer_counter_state(self):
        """The executor-exactness core: two object graphs that differ
        only in address-space-local counters pack to identical bytes."""
        assert pack_record(self._record()) == pack_record(
            self._record(serial_burn=17)
        )

    def test_unpicklable_payload_packs_as_capture_envelope(self):
        def live():
            yield

        generator = live()
        record = HopRecord(500, 1, 2, 3, generator, gen=0)
        surrogate = unpack_record(pack_record(record))
        captured = surrogate.packet
        assert isinstance(captured, CapturedPayload)
        assert captured.kind == "generator"
        assert captured.size_bytes == 0
        # The envelope's bytes are as deterministic as any other's.
        assert pack_record(record) == pack_record(record)


# ---------------------------------------------------------------------------
# Plan / config wiring
# ---------------------------------------------------------------------------


class TestPairPeriods:
    def test_backbone_pairs_get_coarse_periods(self):
        config = SystemConfig(
            machines=8, topology="torus", latency=1_000,
            backbone_latency=4_000, shards=2,
        )
        plan = ShardPlan.build(config, config.build_topology())
        assert plan.lookahead == 1_000
        assert plan.pair_periods == {(0, 1): 4_000}

    def test_uniform_latency_degenerates_to_the_window_grid(self):
        config = SystemConfig(
            machines=8, topology="torus", latency=1_000, shards=2,
        )
        plan = ShardPlan.build(config, config.build_topology())
        assert plan.pair_periods == {(0, 1): 1_000}

    def test_wireless_pairs_are_absent(self):
        # 4x4 torus in 4 one-row shards: rows form a ring, so shards
        # 0-2 and 1-3 share no wire and must never rendezvous.
        config = SystemConfig(
            machines=16, topology="torus", latency=1_000, shards=4,
        )
        plan = ShardPlan.build(config, config.build_topology())
        assert set(plan.pair_periods) == {
            (0, 1), (1, 2), (2, 3), (0, 3),
        }

    def test_period_snaps_down_to_the_grid(self):
        config = SystemConfig(
            machines=8, topology="torus", latency=1_000,
            backbone_latency=2_500, shards=2,
        )
        plan = ShardPlan.build(config, config.build_topology())
        assert plan.pair_periods == {(0, 1): 2_000}


class TestConfigValidation:
    def test_backbone_needs_a_backbone_topology(self):
        with pytest.raises(ConfigError, match="backbone"):
            SystemConfig(
                machines=8, topology="mesh", backbone_latency=500,
            ).validate()

    def test_backbone_slower_than_local_wires(self):
        with pytest.raises(ConfigError, match="backbone_latency"):
            SystemConfig(
                machines=8, topology="torus", latency=1_000,
                backbone_latency=500,
            ).validate()

    def test_elision_needs_nonzero_latency(self):
        with pytest.raises(ConfigError, match="elision"):
            SystemConfig(
                machines=4, latency=0, barrier_elision=True,
            ).validate()

    def test_elision_needs_a_keyed_loop(self):
        from repro.net.network import ShardNetwork

        with pytest.raises(SimulationError, match="KeyedEventLoop"):
            ShardNetwork(
                EventLoop(), Topology.line(2, latency=100),
                shard_index=0, shard_of=lambda m: 0, machines=[0, 1],
                elide_grid=100,
            )


# ---------------------------------------------------------------------------
# Satellite: WorkerBarrier error paths
# ---------------------------------------------------------------------------


class _StubPeer:
    """Just enough ShardPeer for exercising barrier error paths."""

    def __init__(self, outboxes):
        self._outboxes = outboxes
        self.injected = []

    def next_event_time(self):
        return None

    def run_window(self, deadline):
        raise AssertionError("should not run")

    def advance_to(self, time):
        pass

    def drain_outboxes(self):
        out, self._outboxes = self._outboxes, {}
        return out

    def take_outbox(self, dest):
        return self._outboxes.pop(dest, [])

    def inject(self, records):
        self.injected.extend(records)


class TestWorkerBarrierErrors:
    def test_unknown_destination_shard_is_an_error(self):
        barrier = WorkerBarrier(0, {}, 1_000)
        peer = _StubPeer({5: [HopRecord(10, 0, 1, 1, None)]})
        with pytest.raises(RuntimeError, match=r"unknown\s+shards \[5\]"):
            barrier._exchange(peer)

    def test_own_shard_records_loop_back_without_a_pipe(self):
        record = HopRecord(10, 0, 1, 1, None)
        barrier = WorkerBarrier(0, {}, 1_000)
        peer = _StubPeer({0: [record]})
        assert barrier._exchange(peer) == 10
        assert peer.injected == [record]

    def test_dead_worker_is_diagnosed_not_hung(self):
        """A worker that dies mid-exchange (unpicklable cross-shard
        payload) must surface as SimulationError with exit codes, not
        deadlock its peers."""
        system = _build_pingpong(shards=2, elide=False, backbone=None)
        # A payload closure over a generator cannot cross the pipe.
        gen = (x for x in range(3))
        system.schedule_spawn(
            40_000, 0,
            lambda ctx: _poison_sender(ctx, gen),
            name="poison",
        )
        with pytest.raises(SimulationError, match="died.*exit codes"):
            system.execute(
                300_000, lambda shard: None, executor="fork",
            )


def _poison_sender(ctx, payload):
    # Machine 0 is in shard 0; the "e7" server is on machine 7 in
    # shard 1 for the 8-machine 2-shard split, so this message must
    # cross the worker pipe — and a generator payload cannot pickle.
    from repro.servers.common import lookup_service

    service = yield from lookup_service(ctx, "e7")
    yield ctx.send(service, op="poison", payload=payload)


# ---------------------------------------------------------------------------
# End-to-end parity
# ---------------------------------------------------------------------------


def _build_pingpong(shards, elide, backbone, machines=8):
    system = ShardedSystem(SystemConfig(
        machines=machines, topology="torus", latency=1_000,
        shards=shards, trace_categories=(), metrics_enabled=False,
        barrier_elision=elide, backbone_latency=backbone,
    ))
    boards = [ResultsBoard() for _ in system.shards]
    for m in range(machines):
        system.spawn(
            lambda ctx, _m=m: echo_server(ctx, service_name=f"e{_m}"),
            machine=m,
        )
    for m in range(machines):
        client = (m + 3) % machines
        board = boards[system.plan.shard_of(client)]
        system.schedule_spawn(
            10_000 + 700 * m, client,
            lambda ctx, _m=m, _b=board: pinger(
                ctx, service_name=f"e{_m}", rounds=6,
                payload_bytes=32, gap=1_000, board=_b, key="ping",
            ),
        )
    return system


def _collect(shard):
    kstats = [shard.kernels[m].stats for m in shard.machines]
    return {
        "delivered": sum(s.messages_delivered for s in kstats),
        "spawned": sum(s.processes_spawned for s in kstats),
        "packets": shard.network.stats.packets_sent,
        "wire_bytes": shard.network.stats.bytes_sent,
        "events": shard.loop.events_fired,
    }


def _run(shards, elide, backbone, executor=None, until=300_000):
    system = _build_pingpong(shards, elide, backbone)
    executor = executor or ("serial" if shards == 1 else "fork")
    parts = system.execute(
        until,
        lambda shard: (_collect(shard), shard.network.sync.as_dict()),
        executor=executor,
    )
    merged = {
        key: sum(part[0][key] for part in parts) for key in parts[0][0]
    }
    sync = {
        key: sum(part[1][key] for part in parts) for key in parts[0][1]
    }
    return merged, sync


class TestElisionParity:
    def test_elided_counters_match_classic_uniform_latency(self):
        reference, _ = _run(1, False, None)
        assert _run(1, True, None)[0] == reference
        assert _run(2, True, None)[0] == reference

    def test_elided_counters_match_classic_backbone(self):
        reference, _ = _run(1, False, 4_000)
        assert _run(2, False, 4_000)[0] == reference
        assert _run(1, True, 4_000)[0] == reference
        assert _run(2, True, 4_000)[0] == reference

    def test_serial_and_fork_elided_agree(self):
        serial, serial_sync = _run(2, True, 4_000, executor="serial")
        fork, fork_sync = _run(2, True, 4_000, executor="fork")
        assert serial == fork
        # Executor-exact, bytes included: records are packed at
        # production time and the wire form excludes address-space-local
        # fields (serials, receiver-minted link ids), so both executors
        # measure identical blobs.
        assert serial_sync == fork_sync

    def test_elision_actually_elides(self):
        _, classic_sync = _run(2, False, 4_000)
        _, elided_sync = _run(2, True, 4_000)
        assert elided_sync["windows_elided"] > 0
        assert elided_sync["rounds"] < classic_sync["rounds"] * 0.8

    def test_resumed_horizons_match_a_single_run(self):
        single = _run(2, True, 4_000, executor="serial")[0]
        system = _build_pingpong(2, True, 4_000)
        system.run(until=140_000)
        system.run(until=300_000)
        system.drain()
        resumed = {
            key: sum(
                _collect(shard)[key] for shard in system.shards
            )
            for key in (
                "delivered", "spawned", "packets",
                "wire_bytes", "events",
            )
        }
        assert resumed == single

    def test_resume_mid_runahead_off_grid_matches_a_single_run(self):
        """Interrupting a horizon at an off-grid tick mid-run-ahead and
        resuming must not replay a meeting or re-execute a window: the
        runner persists the agreed schedule and the completed clock, so
        chopped-up horizons land on the identical counters."""
        single = _run(2, True, 4_000, executor="serial")[0]
        system = _build_pingpong(2, True, 4_000)
        for until in (7_919, 53_147, 147_001, 300_000):
            system.run(until=until)
        system.drain()
        resumed = {
            key: sum(
                _collect(shard)[key] for shard in system.shards
            )
            for key in (
                "delivered", "spawned", "packets",
                "wire_bytes", "events",
            )
        }
        assert resumed == single

    def test_rendezvous_replay_is_refused(self):
        """The runner's replay guard: a pair scheduled to meet at or
        before its last completed rendezvous is a scheduler bug and
        must surface, not silently double-exchange."""

        class _Inert:
            pass

        runner = ElidedSerialRunner(
            [_Inert(), _Inert()], 1_000, {(0, 1): 1_000}
        )
        runner._last_met[(0, 1)] = 4_000
        with pytest.raises(SimulationError, match="replay"):
            runner.run(horizon=2_000)

    def test_shards_1_elided_never_packs_a_blob(self):
        _, sync = _run(1, True, 4_000)
        assert sync == SyncStats().as_dict()


# ---------------------------------------------------------------------------
# Live payloads under elision
# ---------------------------------------------------------------------------


class TestLivePayloadsUnderElision:
    """Elision used to require picklable cross-shard payloads even in
    one process.  Records are now packed into a capture envelope — an
    unpicklable payload gets a deterministic surrogate for the byte
    accounting while the *original* live object crosses shards in the
    serial executors."""

    @staticmethod
    def _migrating(elide):
        system = ShardedSystem(SystemConfig(
            machines=8, topology="torus", latency=1_000, shards=2,
            trace_categories=(), metrics_enabled=False,
            barrier_elision=elide, backbone_latency=4_000,
        ))
        progress = []

        def worker(ctx):
            while True:
                yield ctx.compute(5_000)
                progress.append(ctx.machine)

        pid = system.spawn(worker, machine=0, name="subject")
        dest = system.shards[1].machines[0]
        ticket = system.migrate(pid, dest)
        system.run(until=2_000_000)
        merged = {
            key: sum(_collect(s)[key] for s in system.shards)
            for key in (
                "delivered", "spawned", "packets", "wire_bytes",
            )
        }
        assert ticket.done and ticket.success
        assert system.where_is(pid) == dest
        assert dest in progress
        return merged

    def test_live_generator_migration_parity(self):
        # The migrating process's generator frame is live (it closes
        # over `progress`); the move must work under elision and land
        # on the classic sharded counters.
        assert self._migrating(elide=True) == self._migrating(
            elide=False
        )

    def test_fork_still_rejects_live_cross_shard_payloads(self):
        system = _build_pingpong(shards=2, elide=True, backbone=4_000)
        gen = (x for x in range(3))
        system.schedule_spawn(
            40_000, 0,
            lambda ctx: _poison_sender(ctx, gen),
            name="poison",
        )
        # The capture envelope makes the *frame* picklable, so the
        # sender survives; the receiving worker refuses to rehydrate
        # the surrogate and dies with a diagnosis.
        with pytest.raises(SimulationError, match="died"):
            system.execute(
                300_000, lambda shard: None, executor="fork",
            )
