"""Tests for the simulated clock and time helpers."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import (
    MSEC,
    SEC,
    USEC,
    SimClock,
    format_time,
    msec,
    sec,
    usec,
)


class TestUnits:
    def test_microsecond_is_base_unit(self):
        assert USEC == 1
        assert MSEC == 1_000
        assert SEC == 1_000_000

    def test_usec_rounds(self):
        assert usec(1.4) == 1
        assert usec(1.6) == 2

    def test_msec_converts(self):
        assert msec(2) == 2_000
        assert msec(0.5) == 500

    def test_sec_converts(self):
        assert sec(3) == 3_000_000
        assert sec(0.001) == 1_000


class TestFormatTime:
    def test_microseconds(self):
        assert format_time(999) == "999us"

    def test_milliseconds(self):
        assert format_time(1_500) == "1.500ms"

    def test_seconds(self):
        assert format_time(2_000_000) == "2.000s"

    def test_zero(self):
        assert format_time(0) == "0us"

    def test_negative_rejected(self):
        with pytest.raises(ClockError):
            format_time(-1)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_starts_at_given_time(self):
        assert SimClock(42).now == 42

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1)

    def test_advances(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(50)
        clock.advance_to(50)
        assert clock.now == 50

    def test_never_runs_backwards(self):
        clock = SimClock(100)
        with pytest.raises(ClockError):
            clock.advance_to(99)

    def test_repr_mentions_time(self):
        assert "1.000ms" in repr(SimClock(1_000))
