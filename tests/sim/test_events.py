"""Tests for the deterministic event queue."""

import pytest

from repro.errors import ClockError
from repro.sim.events import EventQueue


def collect(queue):
    order = []
    while True:
        event = queue.pop()
        if event is None:
            return order
        event.fire()
    return order


class TestOrdering:
    def test_orders_by_time(self):
        queue = EventQueue()
        seen = []
        queue.push(20, seen.append, ("b",))
        queue.push(10, seen.append, ("a",))
        queue.push(30, seen.append, ("c",))
        collect(queue)
        assert seen == ["a", "b", "c"]

    def test_fifo_at_same_time(self):
        queue = EventQueue()
        seen = []
        for tag in range(10):
            queue.push(5, seen.append, (tag,))
        collect(queue)
        assert seen == list(range(10))

    def test_interleaved_push_pop(self):
        queue = EventQueue()
        seen = []
        queue.push(1, seen.append, (1,))
        queue.pop().fire()
        queue.push(2, seen.append, (2,))
        queue.pop().fire()
        assert seen == [1, 2]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        seen = []
        event = queue.push(5, seen.append, ("x",))
        event.cancel()
        queue.note_cancelled()
        assert queue.pop() is None
        assert seen == []

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(5, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_len_reflects_live_events(self):
        queue = EventQueue()
        queue.push(1, lambda: None)
        event = queue.push(2, lambda: None)
        assert len(queue) == 2
        event.cancel()
        queue.note_cancelled()
        assert len(queue) == 1


class TestPeek:
    def test_peek_time_of_next_event(self):
        queue = EventQueue()
        queue.push(42, lambda: None)
        assert queue.peek_time() == 42

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        early = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        early.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 2

    def test_peek_empty_is_none(self):
        assert EventQueue().peek_time() is None


class TestEventOrderingProtocol:
    """ScheduledEvent's rich comparisons: time first, then seq."""

    def make(self, time, seq):
        event = EventQueue().push(time, lambda: None)
        event.seq = seq
        return event

    def test_lt_orders_by_time_then_seq(self):
        assert self.make(1, (0,)) < self.make(2, (0,))
        assert self.make(5, (1,)) < self.make(5, (2,))
        assert not self.make(5, (2,)) < self.make(5, (1,))

    def test_le_admits_equal_events(self):
        assert self.make(1, (0,)) <= self.make(2, (0,))
        assert self.make(5, (3,)) <= self.make(5, (3,))
        assert not self.make(6, (0,)) <= self.make(5, (0,))

    def test_eq_and_hash_agree(self):
        a, b = self.make(7, (1,)), self.make(7, (1,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != self.make(7, (2,))
        assert a != "not an event"

    def test_repr_mentions_time_and_cancelled(self):
        event = self.make(9, (0,))
        assert "time=9" in repr(event)
        assert "cancelled=False" in repr(event)


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ClockError):
            EventQueue().push(-1, lambda: None)

    def test_args_are_passed(self):
        queue = EventQueue()
        seen = []
        queue.push(0, lambda a, b: seen.append((a, b)), (1, 2))
        queue.pop().fire()
        assert seen == [(1, 2)]
