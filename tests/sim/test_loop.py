"""Tests for the discrete-event loop."""

import pytest

from repro.errors import ClockError, SimulationError
from repro.sim.loop import EventLoop, KeyedEventLoop


class TestScheduling:
    def test_call_after_advances_clock(self):
        loop = EventLoop()
        seen = []
        loop.call_after(100, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [100]
        assert loop.now == 100

    def test_call_at_absolute(self):
        loop = EventLoop()
        seen = []
        loop.call_at(50, seen.append, "x")
        loop.run()
        assert seen == ["x"]

    def test_call_soon_fires_at_current_instant(self):
        loop = EventLoop()
        seen = []
        loop.call_after(
            10, lambda: loop.call_soon(lambda: seen.append(loop.now)),
        )
        loop.run()
        assert seen == [10]

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.call_after(10, lambda: None)
        loop.run()
        with pytest.raises(ClockError):
            loop.call_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            EventLoop().call_after(-1, lambda: None)

    def test_step_executes_one_event(self):
        loop = EventLoop()
        seen = []
        loop.call_after(10, seen.append, "a")
        loop.call_after(20, seen.append, "b")
        assert loop.step() is True
        assert seen == ["a"]
        assert loop.now == 10
        assert loop.step() is True
        assert loop.step() is False
        assert seen == ["a", "b"]

    def test_repr_mentions_progress(self):
        loop = EventLoop()
        loop.call_after(5, lambda: None)
        loop.run()
        text = repr(loop)
        assert "now=5" in text
        assert "fired=1" in text

    def test_cascading_events(self):
        loop = EventLoop()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                loop.call_after(10, chain, n + 1)

        loop.call_soon(chain, 0)
        loop.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert loop.now == 50


class TestRun:
    def test_run_returns_events_fired(self):
        loop = EventLoop()
        for i in range(7):
            loop.call_after(i, lambda: None)
        assert loop.run() == 7

    def test_max_events_bound(self):
        loop = EventLoop()
        for i in range(10):
            loop.call_after(i, lambda: None)
        assert loop.run(max_events=3) == 3
        assert loop.pending_events == 7

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        seen = []
        loop.call_after(10, seen.append, "early")
        loop.call_after(100, seen.append, "late")
        loop.run_until(50)
        assert seen == ["early"]
        assert loop.now == 50
        loop.run()
        assert seen == ["early", "late"]

    def test_run_until_includes_deadline_events(self):
        loop = EventLoop()
        seen = []
        loop.call_after(50, seen.append, "at")
        loop.run_until(50)
        assert seen == ["at"]

    def test_run_until_past_deadline_rejected(self):
        loop = EventLoop()
        loop.run_until(100)
        with pytest.raises(ClockError):
            loop.run_until(50)

    def test_run_until_honors_max_events(self):
        loop = EventLoop()
        for i in range(5):
            loop.call_after(10 * i, lambda: None)
        assert loop.run_until(100, max_events=2) == 2
        assert loop.pending_events == 3
        assert loop.run_until(100) == 3
        assert loop.now == 100

    def test_run_until_max_events_still_respects_deadline(self):
        loop = EventLoop()
        for t in (10, 20, 30):
            loop.call_after(t, lambda: None)
        assert loop.run_until(15, max_events=5) == 1
        assert loop.now == 15
        assert loop.pending_events == 2

    def test_reentrant_run_until_rejected(self):
        loop = EventLoop()
        failures = []

        def reenter():
            try:
                loop.run_until(50)
            except SimulationError:
                failures.append(True)

        loop.call_after(10, reenter)
        loop.run_until(20)
        assert failures == [True]

    def test_reentrant_run_rejected(self):
        loop = EventLoop()
        failures = []

        def reenter():
            try:
                loop.run()
            except SimulationError:
                failures.append(True)

        loop.call_soon(reenter)
        loop.run()
        assert failures == [True]

    def test_cancel_via_loop(self):
        loop = EventLoop()
        seen = []
        event = loop.call_after(10, seen.append, "x")
        loop.cancel(event)
        loop.cancel(event)  # idempotent
        loop.run()
        assert seen == []
        assert loop.pending_events == 0

    def test_events_fired_counter(self):
        loop = EventLoop()
        loop.call_after(1, lambda: None)
        loop.call_after(2, lambda: None)
        loop.run()
        assert loop.events_fired == 2


class TestKeyedEventLoop:
    def test_grid_property_and_scheduling(self):
        loop = KeyedEventLoop(grid=1_000)
        assert loop.grid == 1_000
        seen = []
        loop.call_at(500, seen.append, "at")
        loop.call_after(700, seen.append, "after")
        loop.run()
        assert seen == ["at", "after"]

    def test_past_call_at_rejected(self):
        loop = KeyedEventLoop(grid=1_000)
        loop.call_at(10, lambda: None)
        loop.run()
        with pytest.raises(ClockError):
            loop.call_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            KeyedEventLoop(grid=1_000).call_after(-1, lambda: None)


class TestDeterminism:
    def test_identical_runs_fire_in_identical_order(self):
        def trace_run():
            loop = EventLoop()
            seen = []
            for i in range(20):
                loop.call_after(i % 3, seen.append, i)
            loop.run()
            return seen

        assert trace_run() == trace_run()
