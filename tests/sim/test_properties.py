"""Property-based tests for the simulation substrate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import EventQueue
from repro.sim.loop import EventLoop
from repro.sim.rng import RandomStreams


class TestEventQueueProperties:
    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=10_000), max_size=60,
        ),
    )
    def test_pop_order_is_time_then_fifo(self, times):
        queue = EventQueue()
        for index, time in enumerate(times):
            queue.push(time, lambda: None, (index,))
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append((event.time, event.seq))
        assert popped == sorted(popped)
        assert len(popped) == len(times)

    @given(
        times=st.lists(
            st.integers(min_value=0, max_value=1_000),
            min_size=1, max_size=40,
        ),
        cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40),
    )
    def test_cancelled_events_never_fire(self, times, cancel_mask):
        queue = EventQueue()
        events = [queue.push(t, lambda: None) for t in times]
        padded_mask = (cancel_mask * len(events))[:len(events)]
        expected = 0
        for event, cancel in zip(events, padded_mask):
            if cancel:
                event.cancel()
                queue.note_cancelled()
            else:
                expected += 1
        fired = 0
        while queue.pop() is not None:
            fired += 1
        assert fired == expected


class TestLoopProperties:
    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=5_000), max_size=40,
        ),
    )
    def test_clock_monotone_through_any_schedule(self, delays):
        loop = EventLoop()
        observed = []
        for delay in delays:
            loop.call_after(delay, lambda: observed.append(loop.now))
        loop.run()
        assert observed == sorted(observed)
        assert loop.events_fired == len(delays)

    @given(
        delays=st.lists(
            st.integers(min_value=0, max_value=5_000),
            min_size=1, max_size=30,
        ),
        deadline=st.integers(min_value=0, max_value=5_000),
    )
    def test_run_until_partitions_events_exactly(self, delays, deadline):
        loop = EventLoop()
        fired = []
        for delay in delays:
            loop.call_after(delay, fired.append, delay)
        loop.run_until(deadline)
        assert sorted(fired) == sorted(d for d in delays if d <= deadline)
        loop.run()
        assert sorted(fired) == sorted(delays)


class TestRngProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        names=st.lists(
            st.text(min_size=1, max_size=8),
            min_size=1, max_size=6, unique=True,
        ),
    )
    def test_streams_reproducible_regardless_of_order(self, seed, names):
        forward = RandomStreams(seed)
        values_forward = {
            name: forward.stream(name).random() for name in names
        }
        backward = RandomStreams(seed)
        values_backward = {
            name: backward.stream(name).random()
            for name in reversed(names)
        }
        assert values_forward == values_backward
