"""Tests for named deterministic random streams."""

from repro.sim.rng import RandomStreams


class TestStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_same_seed_and_name_reproduce_sequence(self):
        first = RandomStreams(7).stream("channel").random()
        second = RandomStreams(7).stream("channel").random()
        assert first == second

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_creation_order_does_not_matter(self):
        forward = RandomStreams(3)
        forward.stream("a")
        a_then = forward.stream("b").random()

        backward = RandomStreams(3)
        backward.stream("b")
        assert backward.stream("b").random() == a_then

    def test_fork_is_independent_of_parent(self):
        parent = RandomStreams(5)
        child = parent.fork("child")
        assert child.stream("x").random() != parent.stream("x").random()

    def test_fork_reproducible(self):
        a = RandomStreams(5).fork("c").stream("x").random()
        b = RandomStreams(5).fork("c").stream("x").random()
        assert a == b

    def test_repr_lists_streams(self):
        streams = RandomStreams(0)
        streams.stream("zeta")
        assert "zeta" in repr(streams)
