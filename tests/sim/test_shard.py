"""Unit tests for the sharded parallel execution engine.

Covers the partitioner, the conservative window math, the barrier
runners, the ``ShardedSystem`` lifecycle under both executors, and the
determinism gate in miniature: every counter identical for every shard
count.
"""

import pytest

from repro.core.config import SystemConfig
from repro.errors import ConfigError, SimulationError
from repro.net.channel import FaultPlan
from repro.sim.barrier import HopRecord, sort_records, window_end
from repro.sim.shard import (
    ShardedSystem,
    ShardPlan,
    partition_machines,
    shard_alignment,
)
from repro.stats.collector import collect_sharded_report
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard


def sharded(machines=8, shards=2, topology="torus", **overrides):
    return ShardedSystem(SystemConfig(
        machines=machines, shards=shards, topology=topology, **overrides,
    ))


class TestPartitioner:
    def test_contiguous_and_near_even(self):
        groups = partition_machines(list(range(10)), 3)
        assert groups == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_alignment_keeps_units_whole(self):
        groups = partition_machines(list(range(12)), 2, alignment=4)
        assert groups == [[0, 1, 2, 3, 4, 5, 6, 7], [8, 9, 10, 11]]
        for group in groups:
            assert len(group) % 4 == 0

    def test_single_shard_takes_everything(self):
        assert partition_machines(list(range(5)), 1) == [list(range(5))]

    def test_more_shards_than_units_rejected(self):
        with pytest.raises(ConfigError, match="cannot split"):
            partition_machines(list(range(8)), 3, alignment=4)

    def test_non_dividing_alignment_rejected(self):
        with pytest.raises(ConfigError, match="do not divide"):
            partition_machines(list(range(10)), 2, alignment=4)

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigError, match="shards must be >= 1"):
            partition_machines(list(range(4)), 0)

    def test_torus_alignment_is_row_width(self):
        # 16 machines -> 4x4 torus, a row is 4 machines.
        config = SystemConfig(machines=16, topology="torus")
        assert shard_alignment(config) == 4

    def test_cliques_alignment_is_clique_size(self):
        config = SystemConfig(machines=12, topology="cliques")
        assert shard_alignment(config) == 3

    def test_dense_shapes_partition_freely(self):
        assert shard_alignment(SystemConfig(machines=9)) == 1
        assert shard_alignment(
            SystemConfig(machines=8, topology="hypercube")
        ) == 1


class TestWindowMath:
    def test_window_end_snaps_to_grid(self):
        assert window_end(0, 100) == 100
        assert window_end(99, 100) == 100
        assert window_end(100, 100) == 200
        assert window_end(250, 100) == 300

    def test_sort_records_is_canonical(self):
        records = [
            HopRecord(200, 1, 2, 1, "b"),
            HopRecord(100, 3, 0, 2, "a"),
            HopRecord(100, 1, 2, 2, "c"),
            HopRecord(100, 1, 2, 1, "d"),
        ]
        ordered = sort_records(records)
        assert [(r.arrival, r.src, r.dst, r.wire_seq) for r in ordered] == [
            (100, 1, 2, 1), (100, 1, 2, 2), (100, 3, 0, 2), (200, 1, 2, 1),
        ]


class TestShardPlan:
    def test_lookahead_is_min_wire_latency(self):
        system = sharded(machines=8, shards=2, latency=70)
        assert system.plan.lookahead == 70

    def test_shard_of_covers_every_machine(self):
        system = sharded(machines=16, shards=4)
        seen = {}
        for index, group in enumerate(system.plan.shards):
            for machine in group:
                assert system.plan.shard_of(machine) == index
                seen[machine] = index
        assert sorted(seen) == list(range(16))

    def test_unknown_machine_rejected(self):
        system = sharded()
        with pytest.raises(ConfigError, match="no machine"):
            system.plan.shard_of(99)

    def test_torus_rows_never_straddle_shards(self):
        system = sharded(machines=16, shards=4)  # 4x4 torus
        for row in range(4):
            shards = {
                system.plan.shard_of(m)
                for m in range(row * 4, row * 4 + 4)
            }
            assert len(shards) == 1


class TestConfigValidation:
    def test_more_shards_than_machines_rejected(self):
        with pytest.raises(ConfigError, match="cannot split"):
            SystemConfig(machines=2, shards=3).validate()

    def test_zero_latency_sharding_rejected(self):
        with pytest.raises(ConfigError, match="lookahead"):
            SystemConfig(machines=4, shards=2, latency=0).validate()

    def test_single_shard_zero_latency_still_fine(self):
        SystemConfig(machines=4, shards=1, latency=0).validate()


class TestShardedSystemBuild:
    def test_kernels_distributed_by_plan(self):
        system = sharded(machines=8, shards=2)
        assert len(system.shards) == 2
        for shard in system.shards:
            assert sorted(shard.kernels) == shard.machines
            for machine, kernel in shard.kernels.items():
                assert kernel.machine == machine
                assert kernel.loop is shard.loop
        assert system.kernel(5).machine == 5

    def test_boots_same_servers_as_classic_system(self):
        from tests.conftest import make_system

        classic = make_system(machines=8, topology="torus")
        shard_sys = sharded(machines=8, shards=2)
        assert shard_sys.well_known.keys() == classic.well_known.keys()
        assert {
            str(pid) for pid in shard_sys.server_pids.values()
        } == {str(pid) for pid in classic.server_pids.values()}

    def test_domain_view_must_stay_in_one_shard(self):
        system = sharded(machines=16, shards=4)
        view = system.domain_view([0, 1, 2, 3])
        assert [k.machine for k in view.kernels] == [0, 1, 2, 3]
        assert view.kernel(2).machine == 2
        with pytest.raises(ConfigError, match="not in shard"):
            system.domain_view([0, 15])
        with pytest.raises(ConfigError, match="outside this domain"):
            view.kernel(15)
        with pytest.raises(ConfigError, match="at least one machine"):
            system.domain_view([])

    def test_repr_mentions_shards(self):
        assert "shards=2" in repr(sharded())


def pingpong_scenario(system):
    """Echo server + pinger per machine; returns the per-shard boards."""
    boards = [ResultsBoard() for _ in system.shards]
    count = system.config.machines
    for m in system.topology.machines:
        system.spawn(
            lambda ctx, _m=m: echo_server(ctx, service_name=f"echo-{_m}"),
            machine=m, name=f"echo-{m}",
        )
        client = (m + 3) % count
        board = boards[system.plan.shard_of(client)]
        system.schedule_spawn(
            30_000 + 500 * m, client,
            lambda ctx, _m=m, _b=board: pinger(
                ctx, service_name=f"echo-{_m}", rounds=3,
                board=_b, key=f"p{_m}",
            ),
            name=f"pinger-{m}",
        )
    return boards


def fingerprint(system):
    report = collect_sharded_report(system).to_dict()
    report["events_fired"] = system.events_fired()
    return report


class TestSerialExecution:
    def test_quiesces_and_counts_events(self):
        system = sharded()
        pingpong_scenario(system)
        system.drain()
        assert system.quiescent()
        assert system.events_fired() > 0
        assert system.now() > 0

    def test_run_until_stops_all_clocks_at_horizon(self):
        system = sharded()
        pingpong_scenario(system)
        system.run(until=40_000)
        assert all(s.loop.now == 40_000 for s in system.shards)

    def test_shard_count_does_not_change_any_counter(self):
        reference = None
        for shards in (1, 2):
            system = sharded(machines=8, shards=shards)
            pingpong_scenario(system)
            system.drain()
            report = fingerprint(system)
            if reference is None:
                reference = report
            else:
                assert report == reference

    def test_faulty_network_parity(self):
        faults = FaultPlan(
            drop_probability=0.05, duplicate_probability=0.02,
            max_jitter=30,
        )
        reports = []
        for shards in (1, 2):
            system = sharded(machines=8, shards=shards, faults=faults)
            pingpong_scenario(system)
            system.drain()
            reports.append(fingerprint(system))
        assert reports[0] == reports[1]
        assert reports[0]["network"]["packets_dropped"] > 0

    def test_cross_shard_migration_works_serially(self):
        system = sharded(machines=8, shards=2)
        progress = []

        def worker(ctx):
            while True:
                yield ctx.compute(5_000)
                progress.append(ctx.machine)

        pid = system.spawn(worker, machine=0, name="subject")
        dest = system.shards[1].machines[0]
        ticket = system.migrate(pid, dest)
        system.run(until=2_000_000)
        assert ticket.done and ticket.success
        assert system.where_is(pid) == dest
        assert dest in progress

    def test_schedule_migration_skips_absent_pid(self):
        system = sharded(machines=8, shards=2)

        def short_lived(ctx):
            yield ctx.compute(1_000)
            yield ctx.exit()

        pid = system.spawn(short_lived, machine=2, name="gone")
        # By 500ms the process has long exited; the request must be
        # skipped, not crash or migrate a recycled slot.
        system.schedule_migration(500_000, pid, 2, 3)
        system.run(until=1_000_000)
        system.drain()
        assert not system.migration_records()

    def test_migration_records_merged_across_shards(self):
        system = sharded(machines=8, shards=2)

        def parked(ctx):
            while True:
                yield ctx.receive()

        pid = system.spawn(parked, machine=1, name="subject")
        system.schedule_migration(10_000, pid, 1, 2)
        system.run(until=1_000_000)
        records = system.migration_records()
        assert len(records) == 1
        assert records[0].source == 1 and records[0].dest == 2


class TestForkExecution:
    def test_fork_matches_serial(self):
        def run(executor, shards):
            system = sharded(machines=8, shards=shards)
            pingpong_scenario(system)
            results = system.execute(
                None,
                lambda shard: (
                    shard.metrics.snapshot(),
                    shard.loop.events_fired,
                ),
                executor=executor,
            )
            from repro.obs.metrics import merge_snapshots

            merged = merge_snapshots([r[0] for r in results])
            return (
                {
                    name: merged.total(name)
                    for name in merged.counters
                    # sync overhead counts barrier traffic between
                    # workers — real work, but by construction a
                    # function of the shard count (shards=1 has no
                    # peers), so it is not part of the parity set
                    if not name.startswith("sim.sync.")
                },
                sum(r[1] for r in results),
            )

        assert run("fork", 2) == run("serial", 1)

    def test_forked_system_cannot_be_reused(self):
        system = sharded()
        pingpong_scenario(system)
        system.execute(None, lambda shard: None, executor="fork")
        with pytest.raises(SimulationError, match="stale"):
            system.run()

    def test_unknown_executor_rejected(self):
        system = sharded()
        with pytest.raises(ConfigError, match="unknown executor"):
            system.execute(None, lambda shard: None, executor="threads")

    def test_worker_death_reported_not_hung(self):
        system = sharded(machines=8, shards=2)
        pingpong_scenario(system)
        # A live generator cannot cross the result pipe: the worker
        # dies trying to pickle it, and the parent must turn that into
        # a diagnosis instead of deadlocking.
        with pytest.raises(SimulationError, match="died"):
            system.execute(
                None,
                lambda shard: next(iter(
                    shard.kernels.values()
                )).processes,
                executor="fork",
            )


class TestShardNetworkRestrictions:
    def test_fault_reconfig_and_crash_rejected(self):
        system = sharded()
        network = system.shards[0].network
        with pytest.raises(SimulationError, match="not supported"):
            network.set_faults(FaultPlan(drop_probability=0.5))
        with pytest.raises(SimulationError, match="not supported"):
            network.redirect_machine(0, 1)
        with pytest.raises(SimulationError, match="not supported"):
            network.crash_machine(0, 1)
