"""Property-based tests for the sharded execution engine.

The determinism argument in :mod:`repro.sim.barrier` makes three load-
bearing claims that deserve adversarial inputs rather than examples:
per-sender FIFO survives the barrier handoff, same-tick wakeups batch
identically on both sides of a shard boundary, and the whole observable
state is a function of the scenario alone — never of the shard count.
Plus one regression: a process that migrates across a shard boundary
mid-request answers (and is answered) exactly once.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.kernel.ids import ProcessAddress
from repro.kernel.messages import MessageKind
from repro.net.channel import FaultPlan
from repro.sim.shard import ShardedSystem
from repro.stats.collector import collect_sharded_report
from repro.workloads.pingpong import echo_server, pinger
from repro.workloads.results import ResultsBoard

BOUNDED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

fault_plans = st.builds(
    FaultPlan,
    drop_probability=st.sampled_from([0.0, 0.05, 0.15]),
    duplicate_probability=st.sampled_from([0.0, 0.05]),
    max_jitter=st.sampled_from([0, 40]),
)

seeds = st.integers(min_value=0, max_value=10**6)


def sharded(machines=4, shards=2, **overrides):
    overrides.setdefault("topology", "torus")
    return ShardedSystem(SystemConfig(
        machines=machines, shards=shards, **overrides,
    ))


class TestPerSenderFifo:
    @BOUNDED
    @given(
        gaps=st.lists(
            st.integers(min_value=0, max_value=4_000),
            min_size=1, max_size=12,
        ),
        faults=fault_plans,
        seed=seeds,
    )
    def test_fifo_across_a_shard_boundary(self, gaps, faults, seed):
        """Messages from one sender arrive in send order at a receiver
        in another shard, whatever the channel does in between."""
        system = sharded(boot_servers=False, faults=faults, seed=seed)
        # Machine 0 lives in shard 0, machine 3 in shard 1 (2x2 torus).
        assert system.plan.shard_of(0) != system.plan.shard_of(3)
        received = []

        def sink(ctx):
            while True:
                msg = yield ctx.receive()
                received.append(msg.payload)

        pid = system.spawn(sink, machine=3, name="sink")
        at = 1_000
        for index, gap in enumerate(gaps):
            at += gap
            system.call_at(
                at, 0,
                lambda _i=index: system.kernel(0).send_to_process(
                    ProcessAddress(pid, 3), "n", _i,
                    kind=MessageKind.USER,
                ),
            )
        system.run(until=at)
        system.drain()
        assert received == list(range(len(gaps)))


class TestSameTickWakeups:
    @BOUNDED
    @given(
        schedule=st.lists(
            st.tuples(
                st.sampled_from([10_000, 20_000, 20_000, 30_000]),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=2, max_size=8,
        ),
        seed=seeds,
    )
    def test_colliding_wakeups_batch_identically(self, schedule, seed):
        """Wakeups that collide on one tick — on machines that land in
        different shards — fire in the same relative order for every
        shard count, so the downstream message timings are identical."""

        def run(shards):
            system = sharded(
                shards=shards, boot_servers=False, seed=seed,
            )
            posts = []
            arrivals = []

            def sink(ctx):
                while True:
                    msg = yield ctx.receive()
                    arrivals.append((ctx.now, msg.payload))

            sink_pid = system.spawn(sink, machine=3, name="sink")

            def waker(ctx, tag):
                yield ctx.compute(500)
                posts.append((ctx.now, ctx.machine, tag))
                system.kernel(ctx.machine).send_to_process(
                    ProcessAddress(sink_pid, 3), "poke", tag,
                    kind=MessageKind.USER,
                )
                yield ctx.exit()

            for tag, (at, machine) in enumerate(schedule):
                system.schedule_spawn(
                    at, machine,
                    lambda ctx, _t=tag: waker(ctx, _t),
                    name=f"w{tag}",
                )
            system.drain()
            report = collect_sharded_report(system).to_dict()
            return sorted(posts), arrivals, report, system.events_fired()

        assert run(1) == run(2)


class TestShardCountInvariance:
    @BOUNDED
    @given(
        targets=st.lists(
            st.integers(min_value=0, max_value=7),
            min_size=1, max_size=5,
        ),
        faults=fault_plans,
        seed=seeds,
    )
    def test_full_reports_identical_across_shard_counts(
        self, targets, faults, seed,
    ):
        """The merged system report is a function of the scenario, not
        of how many shards executed it."""

        def run(shards):
            system = ShardedSystem(SystemConfig(
                machines=8, topology="torus", shards=shards,
                faults=faults, seed=seed,
            ))
            boards = [ResultsBoard() for _ in system.shards]
            for m in system.topology.machines:
                system.spawn(
                    lambda ctx, _m=m: echo_server(
                        ctx, service_name=f"echo-{_m}",
                    ),
                    machine=m, name=f"echo-{m}",
                )
            for index, target in enumerate(targets):
                client = (target + 3) % 8
                board = boards[system.plan.shard_of(client)]
                system.schedule_spawn(
                    25_000 + 1_500 * index, client,
                    lambda ctx, _t=target, _b=board, _i=index: pinger(
                        ctx, service_name=f"echo-{_t}", rounds=2,
                        board=_b, key=f"p{_i}",
                    ),
                    name=f"pinger-{index}",
                )
            system.drain()
            report = collect_sharded_report(system).to_dict()
            rounds = sorted(
                (key, entry["round"], entry["server_machine"])
                for board in boards
                for key in board.keys()
                if not key.endswith("-summary")
                for entry in board.get(key)
            )
            return report, rounds, system.events_fired()

        assert run(1) == run(2)


class TestMigrationMidRequest:
    @BOUNDED
    @given(
        migrate_at=st.integers(min_value=1_000, max_value=150_000),
        seed=seeds,
    )
    def test_server_crossing_shards_mid_request_replies_exactly_once(
        self, migrate_at, seed,
    ):
        """Regression: a server migrated across the shard boundary in
        the middle of a request stream answers every request exactly
        once — no lost reply at the boundary, no duplicate."""
        rounds = 4
        system = sharded(seed=seed)
        board = ResultsBoard()
        # Server starts on machine 1 (shard 0); machine 3 is in shard 1.
        pid = system.spawn(
            lambda ctx: echo_server(ctx, service_name="svc"),
            machine=1, name="svc",
        )
        system.spawn(
            lambda ctx: pinger(
                ctx, service_name="svc", rounds=rounds,
                board=board, key="p",
            ),
            machine=0, name="client",
        )
        system.schedule_migration(migrate_at, pid, 1, 3)
        system.run(until=2_000_000)
        system.drain()
        replies = board.get("p")
        assert [entry["round"] for entry in replies] == list(range(rounds))
        summary = board.only("p-summary")
        assert summary["rounds"] == rounds
        assert system.where_is(pid) == 3


class TestElisionOrderEquivalence:
    """Satellite claim of the barrier-elision engine: for any topology
    and shard count, the two-level rendezvous schedule delivers every
    hop record to every machine in exactly the order the classic
    global-grid barrier would — bitwise, per machine."""

    @BOUNDED
    @given(
        shape=st.sampled_from([
            ("torus", 8, 2, None),
            ("torus", 8, 2, 4_000),
            ("torus", 16, 4, 2_000),
            ("torus", 16, 4, None),
            ("cliques", 8, 2, 3_000),
            ("cliques", 16, 4, 2_000),
            ("mesh", 8, 2, None),
        ]),
        faults=fault_plans,
        seed=seeds,
    )
    def test_elided_delivery_order_matches_classic(
        self, shape, faults, seed,
    ):
        topology, machines, shards, backbone = shape

        def run(shard_count, elide):
            system = ShardedSystem(SystemConfig(
                machines=machines, topology=topology, latency=1_000,
                shards=shard_count, backbone_latency=backbone,
                barrier_elision=elide, faults=faults, seed=seed,
                trace_categories=(), metrics_enabled=False,
            ))
            deliveries = {m: [] for m in range(machines)}

            def record_hook(record):
                packet = record.packet
                deliveries[record.dst].append((
                    record.arrival, record.src, record.dst,
                    record.wire_seq, packet.kind.value, packet.seq,
                    packet.payload_bytes,
                ))

            for shard in system.shards:
                shard.network.on_record_delivered = record_hook
            for m in range(machines):
                system.spawn(
                    lambda ctx, _m=m: echo_server(
                        ctx, service_name=f"svc-{_m}",
                    ),
                    machine=m,
                )
            for m in range(0, machines, 2):
                client = (m + 3) % machines
                system.schedule_spawn(
                    5_000 + 900 * m, client,
                    lambda ctx, _m=m: pinger(
                        ctx, service_name=f"svc-{_m}", rounds=3,
                        gap=2_000, board=ResultsBoard(), key="p",
                    ),
                )
            system.run(until=250_000)
            system.drain()
            return deliveries

        classic = run(1, elide=False)
        assert run(shards, elide=True) == classic
        # and the classic engine's own parity, with the hook attached
        assert run(shards, elide=False) == classic

    @BOUNDED
    @given(
        shape=st.sampled_from([
            ("torus", 8, 2, 4_000),
            ("cliques", 8, 2, 3_000),
            ("torus", 16, 4, 2_000),
        ]),
        idle=st.sampled_from([40_000, 90_000]),
        cuts=st.lists(
            st.integers(min_value=1, max_value=399_999),
            min_size=0, max_size=3,
        ),
        seed=seeds,
    )
    def test_runahead_idle_gaps_and_resume_match_classic(
        self, shape, idle, cuts, seed,
    ):
        """The run-ahead scheduler's favourite terrain: short traffic
        bursts separated by long idle stretches (meetings get skipped
        wholesale) with the horizon chopped at arbitrary off-grid ticks
        (every re-entry re-arms the meeting schedule).  Delivery order
        must still be bitwise the classic single-shard order."""
        topology, machines, shards, backbone = shape

        def run(shard_count, elide, horizons):
            system = ShardedSystem(SystemConfig(
                machines=machines, topology=topology, latency=1_000,
                shards=shard_count, backbone_latency=backbone,
                barrier_elision=elide, seed=seed,
                trace_categories=(), metrics_enabled=False,
            ))
            deliveries = {m: [] for m in range(machines)}

            def record_hook(record):
                packet = record.packet
                deliveries[record.dst].append((
                    record.arrival, record.src, record.dst,
                    record.wire_seq, packet.kind.value, packet.seq,
                    packet.payload_bytes,
                ))

            for shard in system.shards:
                shard.network.on_record_delivered = record_hook
            for m in range(machines):
                system.spawn(
                    lambda ctx, _m=m: echo_server(
                        ctx, service_name=f"svc-{_m}",
                    ),
                    machine=m,
                )
            # Three bursts, each a single exchange, `idle` apart: the
            # inter-burst stretches are dead air the elided engine
            # should cross without a rendezvous.
            for burst in range(3):
                target = (2 * burst + 1) % machines
                client = (target + machines // 2) % machines
                system.schedule_spawn(
                    5_000 + burst * idle, client,
                    lambda ctx, _t=target: pinger(
                        ctx, service_name=f"svc-{_t}", rounds=1,
                        board=ResultsBoard(), key="p",
                    ),
                )
            for until in horizons:
                system.run(until=until)
            system.drain()
            return deliveries

        full = [400_000]
        chopped = sorted(set(cuts)) + full
        classic = run(1, elide=False, horizons=full)
        assert run(shards, elide=True, horizons=chopped) == classic
        assert run(shards, elide=True, horizons=full) == classic
