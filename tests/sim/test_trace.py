"""Tests for the structured tracer."""

from repro.sim.trace import TraceRecord, Tracer


def make_tracer(**kwargs):
    clock = {"now": 0}
    tracer = Tracer(lambda: clock["now"], **kwargs)
    return tracer, clock


class TestRecording:
    def test_records_time_category_event_fields(self):
        tracer, clock = make_tracer()
        clock["now"] = 42
        tracer.record("kernel", "deliver", pid="p0.1")
        (record,) = tracer.records()
        assert record == TraceRecord(42, "kernel", "deliver", {"pid": "p0.1"})

    def test_filter_by_category(self):
        tracer, _ = make_tracer()
        tracer.record("net", "drop")
        tracer.record("kernel", "deliver")
        assert len(tracer.records("net")) == 1

    def test_filter_by_event(self):
        tracer, _ = make_tracer()
        tracer.record("net", "drop")
        tracer.record("net", "duplicate")
        assert len(tracer.records("net", "drop")) == 1

    def test_count(self):
        tracer, _ = make_tracer()
        for _ in range(3):
            tracer.record("migrate", "step1-freeze")
        assert tracer.count("migrate") == 3
        assert tracer.count("migrate", "step1-freeze") == 3
        assert tracer.count("migrate", "other") == 0

    def test_clear(self):
        tracer, _ = make_tracer()
        tracer.record("a", "b")
        tracer.clear()
        assert len(tracer) == 0

    def test_iteration(self):
        tracer, _ = make_tracer()
        tracer.record("a", "x")
        tracer.record("a", "y")
        assert [r.event for r in tracer] == ["x", "y"]


class TestFiltering:
    def test_disabled_category_not_collected(self):
        tracer, _ = make_tracer(enabled_categories=["kernel"])
        tracer.record("net", "drop")
        tracer.record("kernel", "deliver")
        assert len(tracer) == 1
        assert tracer.dropped == 1

    def test_enabled_accessor(self):
        tracer, _ = make_tracer(enabled_categories=["kernel"])
        assert tracer.enabled("kernel")
        assert not tracer.enabled("net")

    def test_all_enabled_by_default(self):
        tracer, _ = make_tracer()
        assert tracer.enabled("anything")

    def test_empty_category_list_disables_everything(self):
        # An explicitly empty allow-list is not "no filter".
        tracer, _ = make_tracer(enabled_categories=[])
        tracer.record("kernel", "deliver")
        assert len(tracer) == 0
        assert tracer.dropped == 1

    def test_dropped_counts_every_filtered_record(self):
        tracer, _ = make_tracer(enabled_categories=["kernel"])
        for _ in range(3):
            tracer.record("net", "drop")
        tracer.record("kernel", "deliver")
        assert tracer.dropped == 3
        assert len(tracer) == 1

    def test_unsubscribe_stops_delivery(self):
        tracer, _ = make_tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.record("a", "x")
        tracer.unsubscribe(seen.append)
        tracer.record("a", "y")
        assert [r.event for r in seen] == ["x"]

    def test_unsubscribe_unknown_listener_is_a_no_op(self):
        tracer, _ = make_tracer()
        tracer.unsubscribe(lambda record: None)
        tracer.record("a", "x")
        assert len(tracer) == 1


class TestRingBuffer:
    def test_bounded_buffer_keeps_most_recent(self):
        tracer, _ = make_tracer(max_records=3)
        for i in range(5):
            tracer.record("a", f"e{i}")
        assert [r.event for r in tracer] == ["e2", "e3", "e4"]

    def test_bound_is_a_hard_ceiling(self):
        tracer, _ = make_tracer(max_records=10)
        for i in range(1000):
            tracer.record("a", f"e{i}")
            assert len(tracer) <= 10
        assert [r.event for r in tracer] == [
            f"e{i}" for i in range(990, 1000)
        ]

    def test_eviction_does_not_count_as_dropped(self):
        # ``dropped`` counts category-filtered records, not ring
        # evictions: evicted records *were* collected (and seen by
        # listeners), they just aged out of the buffer.
        tracer, _ = make_tracer(max_records=2)
        for i in range(5):
            tracer.record("a", f"e{i}")
        assert tracer.dropped == 0

    def test_listeners_see_records_evicted_from_the_ring(self):
        # A SpanCollector must be able to assemble spans even when the
        # buffer is tighter than one migration's worth of records.
        tracer, _ = make_tracer(max_records=1)
        seen = []
        tracer.subscribe(seen.append)
        for i in range(4):
            tracer.record("a", f"e{i}")
        assert [r.event for r in seen] == ["e0", "e1", "e2", "e3"]
        assert len(tracer) == 1

    def test_filtered_records_do_not_consume_ring_slots(self):
        tracer, _ = make_tracer(
            max_records=2, enabled_categories=["keep"],
        )
        tracer.record("keep", "a")
        for _ in range(10):
            tracer.record("noise", "x")
        tracer.record("keep", "b")
        assert [r.event for r in tracer] == ["a", "b"]
        assert tracer.dropped == 10

    def test_unbounded_by_default(self):
        tracer, _ = make_tracer()
        for i in range(10_000):
            tracer.record("a", "e")
        assert len(tracer) == 10_000


class TestListeners:
    def test_subscriber_sees_records(self):
        tracer, _ = make_tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.record("a", "x")
        assert len(seen) == 1 and seen[0].event == "x"

    def test_subscriber_not_called_for_filtered(self):
        tracer, _ = make_tracer(enabled_categories=["a"])
        seen = []
        tracer.subscribe(seen.append)
        tracer.record("b", "x")
        assert seen == []

    def test_str_rendering(self):
        tracer, clock = make_tracer()
        clock["now"] = 7
        tracer.record("cat", "evt", k=1)
        assert "cat.evt" in str(tracer.records()[0])
