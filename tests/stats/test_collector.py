"""Tests for the system-wide report collector."""

from repro.stats.collector import collect_report
from tests.conftest import drain, make_bare_system, make_system


def parked(ctx):
    while True:
        yield ctx.receive()


class TestCollector:
    def test_fresh_system_report_is_zeroed(self):
        system = make_bare_system()
        report = collect_report(system)
        assert report.machines == 3
        assert report.processes_alive == 0
        assert report.migrations_completed == 0
        assert report.forwarding_entries == 0

    def test_report_after_migration(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        report = collect_report(system)
        assert report.processes_alive == 1
        assert report.migrations_completed == 1
        assert report.admin_messages == 9
        assert report.admin_bytes == 74
        assert report.state_bytes_moved > 250 + 440
        assert report.forwarding_entries == 1
        assert report.forwarding_residual_bytes == 8
        assert report.total_downtime > 0
        assert report.sends_by_category.get("admin") == 9

    def test_report_counts_refusals_separately(self):
        system = make_bare_system()
        system.kernel(1).config.accept_migration = lambda p, s: False
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        report = collect_report(system)
        assert report.migrations_completed == 0
        assert report.migrations_refused == 1

    def test_lines_render_every_headline_number(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        text = "\n".join(collect_report(system).lines())
        assert "migrations: 1 completed" in text
        assert "9 messages, 74 payload bytes" in text
        assert "1 live entries (8 bytes)" in text

    def test_per_machine_load_present(self):
        system = make_bare_system(machines=2)
        report = collect_report(system)
        assert set(report.per_machine_load) == {0, 1}


class TestRequestLatencySection:
    def test_absent_without_closed_loop_workload(self):
        system = make_bare_system()
        report = collect_report(system)
        assert report.request_latency is None
        assert report.to_dict()["request_latency"] is None
        assert not any("request latency" in line for line in report.lines())

    def test_digest_after_closed_loop_run(self):
        from repro.workloads.closed_loop import ClientPool, ClosedLoopConfig
        from repro.workloads.pingpong import echo_server

        system = make_system()
        system.spawn(lambda ctx: echo_server(ctx), machine=1, name="echo")
        pool = ClientPool(
            system, ClosedLoopConfig(clients=2, requests_per_client=3)
        )
        pool.install()
        drain(system)
        assert pool.done
        report = collect_report(system)
        digest = report.request_latency
        assert digest is not None
        assert digest["count"] == 6
        assert 0 < digest["p50_us"] <= digest["p95_us"] <= digest["p99_us"]
        assert digest["p99_us"] <= digest["max_us"]
        rendered = "\n".join(report.lines())
        assert "request latency: p50" in rendered
        assert "(6 requests)" in rendered
        assert report.to_dict()["request_latency"]["count"] == 6

    def test_per_domain_digests_after_open_loop_run(self):
        from repro.workloads.closed_loop import ClientPool, OpenLoopConfig
        from repro.workloads.pingpong import echo_server

        system = make_system()
        for machine, name in ((1, "svc-a"), (2, "svc-b")):
            system.spawn(
                lambda ctx, _n=name: echo_server(ctx, service_name=_n),
                machine=machine, name=name,
            )
        pool = ClientPool(
            system,
            OpenLoopConfig(clients=8, mean_interarrival_us=20_000,
                           duration=120_000, deadline_us=50_000),
            services=("svc-a", "svc-b"),
            domains={"svc-a": "east", "svc-b": "west"},
        )
        pool.install()
        drain(system, max_events=5_000_000)
        report = collect_report(system)
        domains = report.request_latency_by_domain
        assert set(domains) == {"east", "west"}
        assert sum(d["count"] for d in domains.values()) == (
            report.request_latency["count"]
        )
        rendered = "\n".join(report.lines())
        assert "domain east: p50" in rendered
        assert report.to_dict()["request_latency_by_domain"]["west"][
            "count"
        ] == domains["west"]["count"]

    def test_domain_section_empty_without_domain_labels(self):
        system = make_bare_system()
        report = collect_report(system)
        assert report.request_latency_by_domain == {}
        assert report.to_dict()["request_latency_by_domain"] == {}
