"""Tests for the migration cost ledger."""

from repro.kernel.ids import ProcessId
from repro.stats.migration_cost import SEGMENTS, MigrationCostRecord


def make_record(**kwargs):
    defaults = dict(
        pid=ProcessId(0, 1), source=0, dest=1, started_at=100,
    )
    defaults.update(kwargs)
    return MigrationCostRecord(**defaults)


class TestLedger:
    def test_segments_are_the_three_data_moves(self):
        assert SEGMENTS == ("resident", "swappable", "program")

    def test_note_admin_accumulates(self):
        record = make_record()
        record.note_admin("a", 6)
        record.note_admin("b", 12)
        assert record.admin_message_count == 2
        assert record.admin_bytes == 18

    def test_state_transfer_bytes(self):
        record = make_record()
        record.segment_bytes = {"resident": 250, "swappable": 600,
                                "program": 10_000}
        assert record.state_transfer_bytes == 10_850

    def test_downtime_and_duration(self):
        record = make_record(started_at=100)
        assert record.downtime is None
        assert record.duration is None
        record.restarted_at = 600
        record.completed_at = 700
        assert record.downtime == 500
        assert record.duration == 600

    def test_summary_is_flat_and_complete(self):
        record = make_record()
        record.success = True
        record.segment_bytes = {"resident": 250}
        summary = record.summary()
        assert summary["pid"] == "p0.1"
        assert summary["resident_bytes"] == 250
        assert summary["swappable_bytes"] == 0
        assert set(summary) >= {
            "admin_messages", "admin_bytes", "pending_forwarded",
            "downtime_us", "duration_us", "datamove_chunks",
        }
