"""Tests for the timeline renderer."""

from repro.stats.timeline import (
    forwarding_story,
    migration_timeline,
    render_timeline,
)
from tests.conftest import drain, make_bare_system
from repro.kernel.ids import ProcessAddress


def parked(ctx):
    while True:
        yield ctx.receive()


class TestTimeline:
    def test_empty_timeline(self):
        assert render_timeline([]) == "(no migration events)"

    def test_real_migration_renders_all_eight_steps(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        entries = migration_timeline(system.tracer, pid=str(pid))
        labels = [e.label for e in entries]
        assert labels[0].startswith("1 freeze")
        assert labels[-1].startswith("8 restart")
        assert len(entries) == 9  # step 4 appears twice
        text = render_timeline(entries)
        assert "1 freeze (source)" in text
        assert "8 restart (destination)" in text
        assert text.count("|>") == 9

    def test_timeline_filters_by_pid(self):
        system = make_bare_system()
        a = system.spawn(parked, machine=0)
        b = system.spawn(parked, machine=1)
        system.migrate(a, 1)
        system.migrate(b, 2)
        drain(system)
        only_a = migration_timeline(system.tracer, pid=str(a))
        both = migration_timeline(system.tracer)
        assert len(both) == 2 * len(only_a)

    def test_entries_monotone_in_time(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        entries = migration_timeline(system.tracer)
        times = [e.time for e in entries]
        assert times == sorted(times)

    def test_forwarding_story(self):
        system = make_bare_system()
        pid = system.spawn(parked, machine=0)
        system.migrate(pid, 1)
        drain(system)
        client = system.spawn(parked, machine=2)  # gives updates a home

        def chatty(ctx):
            yield ctx.send(ctx.bootstrap["target"], op="hi")
            yield ctx.receive(timeout=50_000)
            yield ctx.exit()

        system.kernel(2).spawn(
            chatty, name="chatty",
            extra_links={"target": ProcessAddress(pid, 0)},
        )
        drain(system)
        story = forwarding_story(system.tracer, str(pid))
        assert any("redirected to machine 1" in line for line in story)
        assert any("retargeted to machine 1" in line for line in story)
