"""Tests for the closed-loop client pool.

Covers the pool mechanics (quotas, service cycling, latency recording),
the seed-determinism property the benchmark baselines rely on, and the
§4 transparency regression: a client awaiting a reply from a process
that migrates mid-request gets exactly one reply — no duplicate, no
loss — whether the migration catches the request in service or in
flight through the forwarding path.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.servers.common import lookup_service, rpc
from repro.workloads.closed_loop import (
    REQUEST_LATENCY_METRIC,
    ClientPool,
    ClosedLoopConfig,
)
from repro.workloads.pingpong import echo_server
from tests.conftest import drain, make_system

BOUNDED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_pool(
    seed: int,
    clients: int,
    requests: int,
    mean_think: int,
    migrate_at: int | None = 40_000,
):
    """One fresh system: echo server on machine 1, pool spread across
    machines, optional forced server migration mid-run."""
    system = make_system(machines=4, seed=seed)
    server = system.spawn(lambda ctx: echo_server(ctx), machine=1,
                          name="echo")
    pool = ClientPool(
        system,
        ClosedLoopConfig(
            clients=clients,
            requests_per_client=requests,
            mean_think_us=mean_think,
        ),
    )
    pool.install()
    if migrate_at is not None:
        system.loop.call_at(migrate_at, lambda: system.migrate(server, 3))
    drain(system)
    return system, pool


class TestClientPool:
    def test_every_client_completes_its_quota(self):
        system, pool = run_pool(seed=0, clients=3, requests=5,
                                mean_think=1_000)
        assert pool.request_counts == [5, 5, 5]
        assert pool.done
        assert len(pool.spawned) == 3
        assert len(pool.board.get("closed-loop")) == 3

    def test_latencies_recorded_in_registry(self):
        system, pool = run_pool(seed=0, clients=2, requests=4,
                                mean_think=500)
        snap = system.metrics.snapshot()
        histogram = snap.histogram(REQUEST_LATENCY_METRIC)
        assert histogram.count == 8
        assert histogram.min > 0
        assert histogram.p50 <= histogram.p95 <= histogram.p99
        assert histogram.p99 <= histogram.max
        assert snap.total("workload.requests_completed") == 8

    def test_services_cycle_across_clients(self):
        system = make_system(machines=4)
        for m, name in ((1, "echo-a"), (2, "echo-b")):
            system.spawn(
                lambda ctx, _n=name: echo_server(ctx, service_name=_n),
                machine=m,
            )
        pool = ClientPool(
            system,
            ClosedLoopConfig(clients=4, requests_per_client=2,
                             mean_think_us=0),
            services=("echo-a", "echo-b"),
        )
        pool.install()
        drain(system)
        targeted = sorted(r["service"] for r in pool.board.get("closed-loop"))
        assert targeted == ["echo-a", "echo-a", "echo-b", "echo-b"]

    def test_zero_think_time_supported(self):
        system, pool = run_pool(seed=0, clients=2, requests=3, mean_think=0,
                                migrate_at=None)
        assert pool.done

    def test_disabled_metrics_registry_still_completes(self):
        system = make_system(machines=4, metrics_enabled=False)
        system.spawn(lambda ctx: echo_server(ctx), machine=1)
        pool = ClientPool(
            system, ClosedLoopConfig(clients=2, requests_per_client=3),
        )
        pool.install()
        drain(system)
        assert pool.done
        assert system.metrics.snapshot().histogram(
            REQUEST_LATENCY_METRIC
        ) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopConfig(clients=0).validate()
        with pytest.raises(ValueError):
            ClosedLoopConfig(requests_per_client=0).validate()
        with pytest.raises(ValueError):
            ClosedLoopConfig(mean_think_us=-1).validate()

    def test_empty_service_list_rejected(self):
        system = make_system(machines=2)
        with pytest.raises(ValueError):
            ClientPool(system, services=())


class TestClosedLoopDeterminism:
    @BOUNDED
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        clients=st.integers(min_value=1, max_value=5),
        requests=st.integers(min_value=1, max_value=5),
        mean_think=st.sampled_from([0, 700, 2_500]),
    )
    def test_same_seed_same_counts_and_buckets(
        self, seed, clients, requests, mean_think
    ):
        """Same seed + config => byte-identical request-count and bucket
        -count vectors across two fresh System runs."""

        def observe(run):
            system, pool = run
            histogram = system.metrics.snapshot().histogram(
                REQUEST_LATENCY_METRIC
            )
            return (
                list(pool.request_counts),
                histogram.bucket_counts,
                histogram.count,
                histogram.sum,
                histogram.min,
                histogram.max,
            )

        first = observe(run_pool(seed, clients, requests, mean_think))
        second = observe(run_pool(seed, clients, requests, mean_think))
        assert first == second
        assert first[0] == [requests] * clients

    def test_different_seeds_differ_in_think_times(self):
        # Not a guarantee for every pair, but these two must diverge:
        # think times are the only stochastic input.
        _, pool_a = run_pool(seed=1, clients=2, requests=4, mean_think=5_000)
        _, pool_b = run_pool(seed=2, clients=2, requests=4, mean_think=5_000)
        assert pool_a._think_times != pool_b._think_times


class TestMidMigrationReply:
    def test_exactly_one_reply_when_server_migrates_in_service(self):
        """The server migrates while computing on the request; the client
        still receives exactly one reply, from the new machine."""
        system = make_system(machines=4)
        server = system.spawn(
            lambda ctx: echo_server(ctx, compute_per_request=100_000),
            machine=1, name="echo",
        )
        replies = []

        def client(ctx):
            service = yield from lookup_service(ctx, "echo")
            reply = yield from rpc(ctx, service, "echo", {"round": 0})
            replies.append(reply.payload)
            # A duplicate or stray forwarded copy would land here.
            extra = yield ctx.receive(timeout=300_000)
            assert extra is None
            yield ctx.exit()

        system.spawn(client, machine=2, name="client")
        # Well inside the 100ms service window: request in service.
        system.loop.call_at(40_000, lambda: system.migrate(server, 3))
        drain(system)
        assert len(replies) == 1
        assert replies[0]["echo"]["round"] == 0
        assert replies[0]["machine"] == 3

    def test_exactly_one_reply_when_request_chases_through_forwarding(self):
        """The request leaves after the server has already moved, reaches
        the stale machine, and is forwarded; still exactly one reply."""
        system = make_system(machines=4)
        server = system.spawn(lambda ctx: echo_server(ctx), machine=1,
                              name="echo")
        replies = []

        def client(ctx):
            service = yield from lookup_service(ctx, "echo")
            # Wait out the migration so the link is stale when we send.
            yield ctx.sleep(80_000)
            reply = yield from rpc(ctx, service, "echo", {"round": 7})
            replies.append(reply.payload)
            extra = yield ctx.receive(timeout=300_000)
            assert extra is None
            yield ctx.exit()

        system.spawn(client, machine=2, name="client")
        system.loop.call_at(20_000, lambda: system.migrate(server, 3))
        drain(system)
        assert len(replies) == 1
        assert replies[0]["echo"]["round"] == 7
        assert replies[0]["machine"] == 3
        assert replies[0]["forwarded"] >= 1

    def test_pool_completes_through_repeated_server_churn(self):
        """A whole pool keeps its exactly-once request/reply pairing
        while the server hops machines repeatedly mid-conversation."""
        system = make_system(machines=4)
        server = system.spawn(
            lambda ctx: echo_server(ctx, compute_per_request=2_000),
            machine=1, name="echo",
        )
        pool = ClientPool(
            system,
            ClosedLoopConfig(clients=4, requests_per_client=10,
                             mean_think_us=1_500),
        )
        pool.install()
        for i, dest in enumerate((3, 0, 2, 1)):
            system.loop.call_at(
                30_000 + 40_000 * i,
                lambda _d=dest: system.migrate(server, _d),
            )
        drain(system)
        assert pool.request_counts == [10] * 4
        histogram = system.metrics.snapshot().histogram(
            REQUEST_LATENCY_METRIC
        )
        assert histogram.count == 40
        moved = [
            r for r in pool.board.get("closed-loop")
            if len(r["server_machines"]) > 1
        ]
        assert moved, "no client ever saw the server on a second machine"
