"""Tests for the shared-file reader workload."""

from repro.servers.filesystem import FileClient
from repro.workloads.file_clients import file_reader
from tests.conftest import drain, make_system


class TestFileReader:
    def test_readers_share_a_file(self, board):
        system = make_system()

        def author(ctx):
            fs = FileClient(ctx)
            yield from fs.create("shared.dat")
            handle = yield from fs.open("shared.dat")
            yield from fs.write(handle, 0, b"R" * 512)
            yield from fs.close(handle)
            yield ctx.exit()

        system.spawn(author, machine=0, name="author")
        drain(system)
        for machine in (2, 3):
            system.spawn(
                lambda ctx: file_reader(ctx, reads=4, board=board),
                machine=machine, name=f"reader-{machine}",
            )
        drain(system)
        results = board.get("file-reader")
        assert len(results) == 2
        for result in results:
            assert len(result["latencies"]) == 4
            assert all(latency > 0 for latency in result["latencies"])

    def test_cache_makes_repeat_reads_cheaper_or_equal(self, board):
        system = make_system()

        def author(ctx):
            fs = FileClient(ctx)
            yield from fs.create("shared.dat")
            handle = yield from fs.open("shared.dat")
            yield from fs.write(handle, 0, b"z" * 512)
            yield ctx.exit()

        system.spawn(author, machine=0, name="author")
        drain(system)
        system.spawn(
            lambda ctx: file_reader(ctx, reads=5, board=board),
            machine=2, name="reader",
        )
        drain(system)
        latencies = board.only("file-reader")["latencies"]
        # First read may seek the disk; later ones come from the buffer
        # cache and are no slower.
        assert min(latencies[1:]) <= latencies[0]
