"""Tests for the open-loop (Poisson-arrival) client pool.

Covers the pool mechanics (schedules honoured, replies matched by id,
per-domain histograms), the deadline regression — a reply arriving after
its client's SLO window must count *late*, never in-SLO — next to the
reply-echo ``mismatches`` check it rides along with, and the two
determinism properties the e13 baselines rely on: same seed => identical
arrival schedule, and the bitwise equality of the merged per-domain
digests with the global one.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.metrics import merge_histogram_snapshots
from repro.workloads.closed_loop import (
    REQUEST_LATENCY_METRIC,
    ClientPool,
    LoadShape,
    OpenLoopConfig,
    open_loop_schedules,
)
from repro.workloads.pingpong import echo_server
from tests.conftest import drain, make_system

BOUNDED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SHAPES = [
    LoadShape(),
    LoadShape(kind="burst", burst_start=20_000, burst_end=60_000,
              burst_factor=5.0),
    LoadShape(kind="diurnal", ramp_factor=3.0),
    LoadShape(kind="hot_key", hot_services=1, hot_share=0.8),
]


def small_config(**overrides) -> OpenLoopConfig:
    defaults = dict(
        clients=12,
        mean_interarrival_us=25_000,
        duration=150_000,
        deadline_us=40_000,
        drain_grace_us=200_000,
    )
    defaults.update(overrides)
    return OpenLoopConfig(**defaults)


def run_open_pool(config: OpenLoopConfig, seed: int = 0, compute: int = 0,
                  domains=None, services=("echo",), server_machines=(1,)):
    """Fresh system, echo servers on *server_machines*, one pool run."""
    system = make_system(machines=4, seed=seed)
    for name, machine in zip(services, server_machines):
        system.spawn(
            lambda ctx, _n=name: echo_server(
                ctx, service_name=_n, compute_per_request=compute
            ),
            machine=machine, name=name,
        )
    pool = ClientPool(
        system, config, services=services, domains=domains, key="open",
    )
    pool.install()
    drain(system, max_events=5_000_000)
    return system, pool


class TestOpenLoopPool:
    def test_every_client_finishes_and_counts_reconcile(self):
        system, pool = run_open_pool(small_config())
        assert pool.open_loop
        assert pool.done
        assert pool.finished_clients == 12
        sent = sum(pool.request_counts)
        assert sent > 0
        # Every request is accounted for exactly once.
        assert pool.in_slo + pool.late + pool.unanswered == sent
        assert pool.mismatches == 0
        snap = system.metrics.snapshot()
        assert snap.total("workload.requests_sent") == sent
        assert snap.total("workload.requests_completed") == (
            pool.in_slo + pool.late
        )

    def test_sent_counts_match_predrawn_schedules(self):
        system, pool = run_open_pool(small_config())
        assert pool.request_counts == [
            len(schedule) for schedule in pool._schedules
        ]

    def test_slow_server_does_not_throttle_arrivals(self):
        """The open-loop contract: offered load is schedule-driven, so a
        slow server receives exactly as many requests as a fast one."""
        fast = run_open_pool(small_config(), compute=0)[1]
        slow = run_open_pool(small_config(), compute=30_000)[1]
        assert slow.request_counts == fast.request_counts

    def test_board_records_per_client_outcomes(self):
        _, pool = run_open_pool(small_config())
        rows = pool.board.get("open")
        assert len(rows) == 12
        assert all(row["sent"] == pool.request_counts[row["client"]]
                   for row in rows)


class TestDeadlineVerdicts:
    """The SLO-window bugfix plus the mismatch check it sits beside."""

    def test_reply_after_deadline_counts_late_not_in_slo(self):
        """Regression: the server takes longer than the deadline window,
        so every answered request must land in ``late`` — a reply the
        user already gave up on is not an in-SLO success."""
        config = small_config(deadline_us=10_000)
        _, pool = run_open_pool(config, compute=25_000)
        answered = pool.in_slo + pool.late
        assert answered > 0
        assert pool.in_slo == 0
        assert pool.late == answered
        assert pool.mismatches == 0

    def test_fast_replies_count_in_slo(self):
        config = small_config(deadline_us=45_000)
        _, pool = run_open_pool(config, compute=0)
        assert pool.in_slo > 0
        assert pool.late + pool.unanswered + pool.in_slo == sum(
            pool.request_counts
        )

    def _absorb(self, pool, now, sent_at, echo, pending):
        """Drive _absorb_reply with a stub context and message."""

        class Ctx:
            def __init__(self):
                self.now = now
                self.destroyed = []

            def destroy_link(self, link):
                self.destroyed.append(link)
                return ("destroy", link)

        class Msg:
            def __init__(self, payload):
                self.payload = payload

        ctx = Ctx()
        gen = pool._absorb_reply(ctx, 0, None, Msg({"echo": echo}), pending)
        for _ in gen:
            pass
        return ctx

    def make_pool(self, deadline):
        system = make_system(machines=2)
        return ClientPool(
            system, small_config(deadline_us=deadline), key="unit",
        )

    def test_boundary_reply_at_deadline_is_in_slo(self):
        pool = self.make_pool(deadline=5_000)
        pending = {3: (1_000, 77)}
        ctx = self._absorb(pool, now=6_000, sent_at=1_000,
                           echo={"client": 0, "req": 3}, pending=pending)
        assert (pool.in_slo, pool.late) == (1, 0)
        assert ctx.destroyed == [77]
        assert not pending

    def test_boundary_reply_one_tick_past_deadline_is_late(self):
        pool = self.make_pool(deadline=5_000)
        ctx = self._absorb(pool, now=6_001, sent_at=1_000,
                           echo={"client": 0, "req": 3},
                           pending={3: (1_000, 77)})
        assert (pool.in_slo, pool.late) == (0, 1)
        assert ctx.destroyed == [77]

    def test_mismatched_echo_counts_mismatch_not_slo(self):
        """A reply echoing another client's request is a mismatch: no
        latency observation, no SLO verdict, pending entry untouched."""
        pool = self.make_pool(deadline=5_000)
        pending = {3: (1_000, 77)}
        ctx = self._absorb(pool, now=2_000, sent_at=1_000,
                           echo={"client": 9, "req": 3}, pending=pending)
        assert pool.mismatches == 1
        assert (pool.in_slo, pool.late) == (0, 0)
        assert ctx.destroyed == []

    def test_unknown_req_id_counts_mismatch(self):
        pool = self.make_pool(deadline=5_000)
        ctx = self._absorb(pool, now=2_000, sent_at=1_000,
                           echo={"client": 0, "req": 42},
                           pending={3: (1_000, 77)})
        assert pool.mismatches == 1
        assert ctx.destroyed == []


class TestLoadShape:
    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LoadShape(kind="tidal").validate()
        with pytest.raises(ValueError):
            LoadShape(kind="burst", burst_start=10, burst_end=10).validate()
        with pytest.raises(ValueError):
            LoadShape(kind="burst", burst_start=0, burst_end=10,
                      burst_factor=0).validate()
        with pytest.raises(ValueError):
            LoadShape(kind="diurnal", ramp_factor=0).validate()
        with pytest.raises(ValueError):
            LoadShape(kind="hot_key").validate()
        with pytest.raises(ValueError):
            LoadShape(hot_share=1.5).validate()
        with pytest.raises(ValueError):
            LoadShape(hot_services=0).validate()

    def test_burst_factor_applies_only_inside_window(self):
        shape = LoadShape(kind="burst", burst_start=100, burst_end=200,
                          burst_factor=4.0)
        assert shape.rate_factor(50, 1_000) == 1.0
        assert shape.rate_factor(100, 1_000) == 4.0
        assert shape.rate_factor(199, 1_000) == 4.0
        assert shape.rate_factor(200, 1_000) == 1.0

    def test_diurnal_ramp_is_linear(self):
        shape = LoadShape(kind="diurnal", ramp_factor=3.0)
        assert shape.rate_factor(0, 1_000) == 1.0
        assert shape.rate_factor(500, 1_000) == 2.0
        assert shape.rate_factor(1_000, 1_000) == 3.0
        assert shape.rate_factor(2_000, 1_000) == 3.0

    def test_hot_key_weights_sum_to_one_and_skew(self):
        shape = LoadShape(kind="hot_key", hot_services=2, hot_share=0.8)
        weights = shape.service_weights(8)
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] == weights[1] == pytest.approx(0.4)
        assert all(w == pytest.approx(0.2 / 6) for w in weights[2:])

    def test_uniform_weights_when_no_skew(self):
        assert LoadShape().service_weights(4) == [0.25] * 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OpenLoopConfig(clients=0).validate()
        with pytest.raises(ValueError):
            OpenLoopConfig(mean_interarrival_us=0).validate()
        with pytest.raises(ValueError):
            OpenLoopConfig(duration=0).validate()
        with pytest.raises(ValueError):
            OpenLoopConfig(deadline_us=0).validate()
        with pytest.raises(ValueError):
            OpenLoopConfig(drain_grace_us=-1).validate()


class TestScheduleDeterminism:
    @BOUNDED
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        clients=st.integers(min_value=1, max_value=40),
        mean=st.sampled_from([5_000, 25_000, 80_000]),
        shape=st.sampled_from(SHAPES),
    )
    def test_same_seed_same_schedule(self, seed, clients, mean, shape):
        """The arrival schedule is a pure function of (config, seed)."""
        config = OpenLoopConfig(
            clients=clients, mean_interarrival_us=mean,
            duration=200_000, shape=shape,
        )
        first = open_loop_schedules(config, random.Random(seed))
        second = open_loop_schedules(config, random.Random(seed))
        assert first == second
        assert len(first) == clients
        end = config.start_at + config.duration
        for times in first:
            assert times == sorted(times)
            assert all(config.start_at <= t < end for t in times)

    def test_burst_window_densifies_arrivals(self):
        config = OpenLoopConfig(
            clients=50, mean_interarrival_us=20_000, duration=300_000,
            shape=LoadShape(kind="burst", burst_start=100_000,
                            burst_end=200_000, burst_factor=6.0),
        )
        schedules = open_loop_schedules(config, random.Random(7))
        flat = [t for times in schedules for t in times]
        window = config.start_at + 100_000, config.start_at + 200_000
        inside = sum(1 for t in flat if window[0] <= t < window[1])
        outside = len(flat) - inside
        # The burst window is 1/3 of the run at 6x the rate: inside
        # arrivals must dominate even with sampling noise.
        assert inside > outside

    def test_full_run_twice_is_byte_identical(self):
        """Two fresh systems, same seed: every deterministic counter and
        the full latency bucket vector agree."""

        def observe():
            system, pool = run_open_pool(
                small_config(
                    shape=LoadShape(kind="burst", burst_start=30_000,
                                    burst_end=80_000, burst_factor=4.0),
                ),
                seed=11, compute=3_000,
            )
            histogram = system.metrics.snapshot().histogram(
                REQUEST_LATENCY_METRIC
            )
            return (
                list(pool.request_counts),
                pool.in_slo, pool.late, pool.unanswered, pool.mismatches,
                histogram.bucket_counts, histogram.count, histogram.sum,
            )

        assert observe() == observe()


class TestPerDomainDigests:
    def test_domain_merge_equals_global_bitwise(self):
        """Observed through a real run: folding the per-domain histogram
        snapshots reproduces the global snapshot exactly (latencies are
        integers, so float sums are exact and order-free)."""
        config = small_config(
            clients=16,
            shape=LoadShape(kind="hot_key", hot_services=1, hot_share=0.7),
        )
        system, pool = run_open_pool(
            config,
            services=("svc-a", "svc-b"),
            server_machines=(1, 2),
            domains={"svc-a": "east", "svc-b": "west"},
        )
        snap = system.metrics.snapshot()
        global_hist = snap.histogram(REQUEST_LATENCY_METRIC)
        by_domain = snap.histogram_by_label(REQUEST_LATENCY_METRIC, "domain")
        assert set(by_domain) == {"east", "west"}
        merged = merge_histogram_snapshots(
            [by_domain[d] for d in sorted(by_domain)]
        )
        assert merged.bucket_counts == global_hist.bucket_counts
        assert merged.count == global_hist.count
        assert merged.sum == global_hist.sum
        assert merged.min == global_hist.min
        assert merged.max == global_hist.max

    @BOUNDED
    @given(
        observations=st.lists(
            st.tuples(
                st.sampled_from(["east", "west", "north"]),
                st.integers(min_value=1, max_value=60_000_000),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_merge_property_over_arbitrary_streams(self, observations):
        """Bitwise merge equality holds for any interleaving of integer
        latencies across domains — the property the e13 gate relies on."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        global_hist = registry.latency_histogram(REQUEST_LATENCY_METRIC)
        domain_hist = {}
        for domain, latency in observations:
            global_hist.observe(latency)
            if domain not in domain_hist:
                domain_hist[domain] = registry.latency_histogram(
                    REQUEST_LATENCY_METRIC, domain=domain
                )
            domain_hist[domain].observe(latency)
        merged = merge_histogram_snapshots(
            [domain_hist[d].freeze() for d in sorted(domain_hist)]
        )
        assert merged == global_hist.freeze()
