"""Tests for the synthetic workload programs and generators."""

from repro.workloads.compute import compute_bound, migratory_compute
from repro.workloads.generators import Arrival, ArrivalGenerator, burst_plan, poisson_plan
from repro.workloads.pingpong import echo_server, make_pair_programs, pinger
from repro.workloads.results import ResultsBoard
from tests.conftest import drain, make_bare_system, make_system


class TestResultsBoard:
    def test_post_and_get(self):
        board = ResultsBoard()
        board.post("k", 1)
        board.post("k", 2)
        assert board.get("k") == [1, 2]

    def test_only_asserts_single(self):
        import pytest

        board = ResultsBoard()
        board.post("k", 1)
        assert board.only("k") == 1
        board.post("k", 2)
        with pytest.raises(AssertionError):
            board.only("k")

    def test_clear_and_len(self):
        board = ResultsBoard()
        board.post("a", 1)
        board.post("b", 2)
        assert len(board) == 2
        board.clear()
        assert len(board) == 0
        assert board.keys() == []


class TestComputeWorkloads:
    def test_compute_bound_posts_summary(self, board):
        system = make_bare_system()
        system.spawn(
            lambda ctx: compute_bound(ctx, total=5_000, board=board),
            machine=0,
        )
        drain(system)
        record = board.only("compute")
        assert record["elapsed"] >= 5_000
        assert record["machines"] == [0]

    def test_migratory_compute_hops(self, board):
        system = make_bare_system()
        system.spawn(
            lambda ctx: migratory_compute(
                ctx, total=20_000, hop_to=2, hop_after=5_000, board=board,
            ),
            machine=0,
        )
        drain(system)
        record = board.only("migratory-compute")
        assert record["hopped"]
        assert record["finished_on"] == 2

    def test_compute_records_machines_visited(self, board):
        system = make_bare_system()
        pid = system.spawn(
            lambda ctx: compute_bound(
                ctx, total=30_000, slice_size=1_000, board=board,
            ),
            machine=0,
        )
        system.loop.call_at(5_000, lambda: system.migrate(pid, 1))
        drain(system)
        record = board.only("compute")
        assert record["machines"] == [0, 1]


class TestPingPong:
    def test_round_trips_recorded(self, board):
        system = make_system()
        system.spawn(lambda ctx: echo_server(ctx), machine=1, name="echo")
        system.spawn(
            lambda ctx: pinger(ctx, rounds=3, board=board, key="p"),
            machine=2,
        )
        drain(system)
        assert len(board.get("p")) == 3
        summary = board.only("p-summary")
        assert summary["rounds"] == 3
        assert all(t["latency"] > 0 for t in summary["transcript"])

    def test_pair_programs_complete(self, board):
        system = make_system()
        leader, follower = make_pair_programs(board, rounds=5)
        system.spawn(leader, machine=1, name="leader")
        system.spawn(follower, machine=2, name="follower")
        drain(system)
        assert board.only("pair-leader")["machine"] == 1
        assert board.only("pair-follower")["elapsed"] > 0


class TestGenerators:
    def test_burst_plan_shape(self):
        plan = burst_plan(lambda ctx: iter(()), machine=2, count=3,
                          start=100, spacing=50)
        assert [a.at for a in plan] == [100, 150, 200]
        assert all(a.machine == 2 for a in plan)

    def test_arrival_generator_spawns_on_schedule(self, board):
        system = make_bare_system()
        plan = burst_plan(
            lambda ctx: compute_bound(ctx, total=1_000, board=board),
            machine=1, count=4, start=1_000, spacing=500,
        )
        generator = ArrivalGenerator(system, plan)
        generator.install()
        drain(system)
        assert len(generator.spawned) == 4
        assert len(board.get("compute")) == 4

    def test_poisson_plan_is_deterministic(self):
        system_a = make_bare_system(seed=5)
        system_b = make_bare_system(seed=5)
        plan_a = poisson_plan(
            system_a, lambda ctx: iter(()), rate_per_ms=0.5,
            duration=100_000, machine_weights={0: 0.7, 1: 0.3},
        )
        plan_b = poisson_plan(
            system_b, lambda ctx: iter(()), rate_per_ms=0.5,
            duration=100_000, machine_weights={0: 0.7, 1: 0.3},
        )
        assert [(a.at, a.machine) for a in plan_a] == [
            (b.at, b.machine) for b in plan_b
        ]

    def test_poisson_plan_respects_weights(self):
        system = make_bare_system(seed=1)
        plan = poisson_plan(
            system, lambda ctx: iter(()), rate_per_ms=2.0,
            duration=200_000, machine_weights={0: 0.9, 1: 0.1},
        )
        on_zero = sum(1 for a in plan if a.machine == 0)
        assert on_zero > len(plan) * 0.6
        assert all(a.at < 200_000 for a in plan)
